// Soundness invariants of the early-termination machinery (§IV):
// early *copying* conclusions rest on the exact lower bound Cmin and
// must therefore never contradict PAIRWISE; early *no-copying*
// conclusions rest on the estimated h and may rarely err — but only in
// that one direction. These tests pin the asymmetry.
#include <gtest/gtest.h>

#include "core/bayes.h"
#include "core/bound.h"
#include "core/pairwise.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::PaperParams;

struct Verdicts {
  std::vector<uint64_t> early_copy;
  std::vector<uint64_t> early_nocopy;
};

/// Runs a bounded scan and splits the concluded pairs by how they were
/// decided (early conclusions get their decision_rank before the scan
/// end; survivors are exact).
Verdicts EarlyVerdicts(const DetectionInput& in, bool lazy,
                       size_t* num_entries_out) {
  ScanConfig config;
  config.lazy_bounds = lazy;
  Counters counters;
  CopyResult result;
  ScanBookkeeping book;
  OverlapCounts overlaps = ComputeOverlaps(*in.data);
  ScanOutputs extras;
  CD_CHECK_OK(BoundedScan(in, PaperParams(), config, overlaps,
                          &counters, &result, &book, &extras));
  *num_entries_out = extras.num_entries;
  Verdicts v;
  book.ForEach([&](uint64_t key, PairBook& pb) {
    if (pb.decision_rank >= extras.num_entries) return;  // exact
    if (pb.decision > 0) {
      v.early_copy.push_back(key);
    } else {
      v.early_nocopy.push_back(key);
    }
  });
  return v;
}

class BoundSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundSoundnessTest, EarlyCopyConclusionsAreSound) {
  // Cmin (Eq. 9) is a true lower bound: every pair concluded copying
  // early must also be copying under exhaustive PAIRWISE.
  testutil::World world = testutil::SmallWorld(GetParam(), 45, 350);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  PairwiseDetector pairwise(PaperParams());
  CopyResult exact;
  ASSERT_TRUE(pairwise.DetectRound(in, 1, &exact).ok());

  for (bool lazy : {false, true}) {
    size_t entries = 0;
    Verdicts v = EarlyVerdicts(in, lazy, &entries);
    for (uint64_t key : v.early_copy) {
      EXPECT_TRUE(exact.IsCopying(PairFirst(key), PairSecond(key)))
          << "lazy=" << lazy << " pair " << PairFirst(key) << ","
          << PairSecond(key);
    }
  }
}

TEST_P(BoundSoundnessTest, EarlyNoCopyErrorsAreRare) {
  // Cmax (Eq. 10) uses the h estimate — not a certified bound — so a
  // small error rate is allowed, but it must stay small (the paper:
  // "the decisions are rarely different").
  testutil::World world = testutil::SmallWorld(GetParam(), 45, 350);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  PairwiseDetector pairwise(PaperParams());
  CopyResult exact;
  ASSERT_TRUE(pairwise.DetectRound(in, 1, &exact).ok());

  size_t entries = 0;
  Verdicts v = EarlyVerdicts(in, /*lazy=*/true, &entries);
  if (v.early_nocopy.empty()) return;
  size_t wrong = 0;
  for (uint64_t key : v.early_nocopy) {
    if (exact.IsCopying(PairFirst(key), PairSecond(key))) ++wrong;
  }
  EXPECT_LE(static_cast<double>(wrong),
            0.1 * static_cast<double>(v.early_nocopy.size()) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Worlds, BoundSoundnessTest,
                         ::testing::Values(811, 812, 813, 814));

TEST(BoundInvariants, SurvivorsAreExact) {
  // Pairs that reach the end of the scan have n0 == n, so their score
  // (and decision) must equal PAIRWISE's bit for bit.
  testutil::World world = testutil::SmallWorld(820, 40, 250);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  ScanConfig config;
  config.lazy_bounds = true;
  Counters counters;
  CopyResult result;
  ScanBookkeeping book;
  OverlapCounts overlaps = ComputeOverlaps(world.data);
  ScanOutputs extras;
  ASSERT_TRUE(BoundedScan(in, PaperParams(), config, overlaps, &counters,
                          &result, &book, &extras)
                  .ok());

  size_t checked = 0;
  book.ForEach([&](uint64_t key, PairBook& pb) {
    if (pb.decision_rank < extras.num_entries) return;  // early
    if (checked >= 30) return;
    ++checked;
    SourceId a = PairFirst(key);
    SourceId b = PairSecond(key);
    Counters scratch;
    PairScores scores =
        ComputePairScores(in, a, b, PaperParams(), &scratch);
    PairPosterior recorded = result.Get(a, b);
    Posteriors post = DirectionPosteriors(scores.c_fwd, scores.c_bwd,
                                          PaperParams());
    EXPECT_NEAR(recorded.p_indep, post.indep, 1e-9)
        << "pair " << a << "," << b;
  });
  EXPECT_GT(checked, 0u);
}

TEST(BoundInvariants, TimersOnlyDelayConclusionsNeverChangeEndState) {
  // BOUND vs BOUND+ may terminate pairs at different entries, but a
  // pair that survives to the end in one must be concluded identically
  // in the other (both end states are exact).
  testutil::World world = testutil::SmallWorld(821, 40, 250);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  BoundDetector eager(PaperParams(), /*lazy=*/false);
  BoundDetector lazy(PaperParams(), /*lazy=*/true);
  CopyResult r_eager;
  CopyResult r_lazy;
  ASSERT_TRUE(eager.DetectRound(in, 1, &r_eager).ok());
  ASSERT_TRUE(lazy.DetectRound(in, 1, &r_lazy).ok());
  // Lazy timers can only *delay* bound checks; decisions made from
  // exact end-state scores agree. Compare copying sets with a small
  // tolerance for pairs whose early h-estimates differed.
  std::vector<uint64_t> a = testutil::CopySet(r_eager);
  std::vector<uint64_t> b = testutil::CopySet(r_lazy);
  size_t common = 0;
  for (uint64_t key : a) {
    if (std::find(b.begin(), b.end(), key) != b.end()) ++common;
  }
  ASSERT_FALSE(a.empty());
  EXPECT_GE(static_cast<double>(common),
            0.9 * static_cast<double>(std::max(a.size(), b.size())));
}

}  // namespace
}  // namespace copydetect
