#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(6);
  const size_t n = 100000;
  std::vector<uint64_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  std::vector<uint64_t> partial(pool.num_threads() * 64, 0);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(n, [&](size_t i) {
    total.fetch_add(values[i], std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> inside{false};
  pool.Submit([&] { inside = pool.InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a nested ParallelFor used to enqueue its chunks and
  // block in Wait(). Wait() from a worker can never observe
  // in_flight_ == 0 — the caller's own task is in flight — so once
  // every worker nested, the pool hung forever (this test used to
  // trip the ctest timeout). Nested calls now run inline.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(16, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16 * 16);
}

TEST(ThreadPool, WaitFromWorkerDrainsInsteadOfBlocking) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&] {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();  // used to deadlock; now helps run queued tasks
  });
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WaitFromWorkerWaitsForTasksRunningElsewhere) {
  // Regression: the first in-worker Wait() implementation returned as
  // soon as the queue was empty, even while a task it had submitted
  // was still *executing* on another worker — callers could observe
  // partial results. Wait() must also wait out in-flight tasks.
  ThreadPool pool(3);
  std::atomic<int> started{0};
  std::atomic<bool> slow_done{false};
  std::atomic<bool> waiter_ran{false};
  std::atomic<bool> observed_done{false};
  pool.Submit([&] {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
    // Both tasks are now in flight and the queue is empty: the old
    // Wait() in the other task returns immediately, before this sleep
    // finishes.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    slow_done.store(true);
  });
  pool.Submit([&] {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
    pool.Wait();
    observed_done.store(slow_done.load());
    waiter_ran.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(waiter_ran.load());
  EXPECT_TRUE(observed_done.load());
}

TEST(ThreadPool, ShutdownDrainsInFlightTasks) {
  // Regression: tearing a pool down used to race task completion —
  // Shutdown must finish every already-submitted task before joining,
  // deterministically, so no submitted work is ever dropped.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Shutdown();
    EXPECT_EQ(done.load(), 64);
  }
}

TEST(ThreadPool, SubmitAfterShutdownRunsInline) {
  // Work handed to a drained pool must not be lost (and must not
  // crash): it degrades to running on the caller.
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> ran{0};
  std::thread::id runner;
  pool.Submit([&] {
    ran.fetch_add(1);
    runner = std::this_thread::get_id();
  });
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(runner, std::this_thread::get_id());
  pool.ParallelFor(10, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, ShutdownIsIdempotentAndConcurrencySafe) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  std::thread racer([&pool] { pool.Shutdown(); });
  pool.Shutdown();
  racer.join();
  pool.Shutdown();  // and again after the fact
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ConcurrentParallelForCallsComplete) {
  // Each ParallelFor call tracks its own completion, so two callers
  // sharing one pool cannot wait on each other's tasks.
  ThreadPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread t1(
      [&] { pool.ParallelFor(500, [&a](size_t) { a.fetch_add(1); }); });
  std::thread t2(
      [&] { pool.ParallelFor(500, [&b](size_t) { b.fetch_add(1); }); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 500);
}

}  // namespace
}  // namespace copydetect
