#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(6);
  const size_t n = 100000;
  std::vector<uint64_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  std::vector<uint64_t> partial(pool.num_threads() * 64, 0);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(n, [&](size_t i) {
    total.fetch_add(values[i], std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace copydetect
