// Property test for the online-update path: a long randomized (but
// seeded — failures reproduce) stream of DatasetDelta steps mixing
// adds, overwrites and retractions, including steps that introduce
// brand-new sources/items and steps that retire a source's last
// observation. After every applied step, Session::Update's report
// must stay bit-identical to rebuilding the merged data set from
// scratch and Run()ning it cold — the same acceptance bar as
// session_update_test.cc, stretched from hand-written deltas to a
// 200+ step adversarial stream for every registered detector.
#include "copydetect/session.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace copydetect {
namespace {

constexpr size_t kSteps = 200;
constexpr uint64_t kStreamSeed = 0x5eed0de17a5ULL;

void ExpectSameCopies(const CopyResult& got, const CopyResult& want) {
  EXPECT_EQ(got.NumTracked(), want.NumTracked());
  want.ForEach([&](SourceId a, SourceId b, const PairPosterior& w) {
    PairPosterior g = got.Get(a, b);
    EXPECT_EQ(g.p_indep, w.p_indep) << "pair " << a << "," << b;
    EXPECT_EQ(g.p_first_copies, w.p_first_copies)
        << "pair " << a << "," << b;
    EXPECT_EQ(g.p_second_copies, w.p_second_copies)
        << "pair " << a << "," << b;
  });
}

void ExpectSameFusion(const FusionResult& got,
                      const FusionResult& want) {
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.converged, want.converged);
  ASSERT_EQ(got.value_probs.size(), want.value_probs.size());
  for (size_t v = 0; v < want.value_probs.size(); ++v) {
    EXPECT_EQ(got.value_probs[v], want.value_probs[v]) << "slot " << v;
  }
  ASSERT_EQ(got.accuracies.size(), want.accuracies.size());
  for (size_t s = 0; s < want.accuracies.size(); ++s) {
    EXPECT_EQ(got.accuracies[s], want.accuracies[s]) << "source " << s;
  }
  EXPECT_EQ(got.truth, want.truth);
  ExpectSameCopies(got.copies, want.copies);
}

Report RunColdSession(const Dataset& data,
                      const SessionOptions& options) {
  SessionOptions cold = options;
  cold.online_updates = false;
  auto session = Session::Create(cold);
  CD_CHECK_OK(session.status());
  auto report = session->Run(data);
  CD_CHECK_OK(report.status());
  return std::move(report).value();
}

/// One random step against the current snapshot: 1-6 ops biased
/// toward adds, with at most one op per cell (the delta contract).
/// Values come from a 6-string pool so sources genuinely share and
/// conflict, feeding the copy detectors real evidence.
DatasetDelta RandomDelta(const Dataset& data, Rng& rng,
                         size_t* fresh_names) {
  DatasetDelta delta;
  std::set<std::pair<std::string, std::string>> cells;
  auto claim = [&](std::string_view source, std::string_view item) {
    return cells
        .emplace(std::string(source), std::string(item))
        .second;
  };
  // StrFormat instead of `"v" + std::to_string(...)`: the short-
  // literal concatenation trips GCC 12's -Wrestrict false positive
  // (PR105651) under the werror preset.
  auto random_value = [&] {
    return StrFormat("v%llu",
                     static_cast<unsigned long long>(rng.NextBelow(6)));
  };
  auto fresh_name = [&](const char* prefix) {
    return StrFormat("%s%zu", prefix, (*fresh_names)++);
  };

  const size_t ops = 1 + rng.NextBelow(6);
  for (size_t i = 0; i < ops; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.15 || data.num_sources() == 0) {
      // A brand-new source appears, covering 1-3 items (one possibly
      // brand-new too).
      std::string source = fresh_name("R");
      const size_t coverage = 1 + rng.NextBelow(3);
      for (size_t k = 0; k < coverage; ++k) {
        std::string item =
            (rng.Bernoulli(0.2) || data.num_items() == 0)
                ? fresh_name("D")
                : std::string(data.item_name(static_cast<ItemId>(
                      rng.NextBelow(data.num_items()))));
        if (claim(source, item)) delta.Set(source, item, random_value());
      }
      continue;
    }
    const SourceId s =
        static_cast<SourceId>(rng.NextBelow(data.num_sources()));
    std::span<const ItemId> covered = data.items_of(s);
    if (roll < 0.45 && !covered.empty() &&
        data.num_observations() > 8) {
      // Retract an existing observation — occasionally the source's
      // last one, retiring the source from the rebuilt universe.
      const ItemId item = covered[rng.NextBelow(covered.size())];
      if (claim(data.source_name(s), data.item_name(item))) {
        delta.Retract(data.source_name(s), data.item_name(item));
      }
      continue;
    }
    // Set on a random cell of an existing source: an overwrite when
    // the cell is occupied, an add otherwise.
    std::string item =
        rng.Bernoulli(0.1)
            ? fresh_name("D")
            : std::string(data.item_name(static_cast<ItemId>(
                  rng.NextBelow(data.num_items()))));
    if (claim(data.source_name(s), item)) {
      delta.Set(data.source_name(s), item, random_value());
    }
  }
  return delta;
}

/// The stream is generated once against an evolving shadow snapshot
/// (ops must reference cells that exist at their step), then replayed
/// identically for every detector.
std::vector<DatasetDelta> MakeStream(const Dataset& base, size_t steps,
                                     uint64_t seed) {
  Rng rng(seed);
  size_t fresh_names = 0;
  std::vector<DatasetDelta> deltas;
  Dataset current = base;
  for (size_t i = 0; i < steps; ++i) {
    DatasetDelta delta = RandomDelta(current, rng, &fresh_names);
    if (delta.empty()) continue;
    auto applied = current.Apply(delta);
    CD_CHECK_OK(applied.status());
    current = std::move(applied).value().data;
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

/// Replays the stream through one online session, comparing against
/// the cold yardstick every `check_every` steps and always at the
/// end. A divergence cannot slip through sampling: the next checked
/// step compares the full report, which is a function of the whole
/// accumulated state.
void ReplayStream(const Dataset& base,
                  const std::vector<DatasetDelta>& deltas,
                  const std::string& detector, size_t check_every) {
  SessionOptions options;
  options.detector = detector;
  options.online_updates = true;
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());
  CD_CHECK_OK(session->Run(base).status());

  for (size_t step = 0; step < deltas.size(); ++step) {
    SCOPED_TRACE(detector + " step " + std::to_string(step));
    CD_CHECK_OK(session->Update(deltas[step]));
    if (step % check_every != 0 && step + 1 != deltas.size()) continue;
    ASSERT_NE(session->current_data(), nullptr);
    Dataset rebuilt = RebuildFromScratch(*session->current_data());
    Report cold = RunColdSession(rebuilt, options);
    ExpectSameFusion(session->report().fusion, cold.fusion);
    EXPECT_EQ(session->report().graph.NumPairs(),
              cold.graph.NumPairs());
  }
}

TEST(UpdateProperty, LongRandomStreamEveryRegisteredDetector) {
  World world = MotivatingExample();
  const std::vector<DatasetDelta> deltas =
      MakeStream(world.data, kSteps, kStreamSeed);
  ASSERT_GE(deltas.size(), 150u);  // few steps collapse to empty
  for (const std::string& name : ListDetectors()) {
    // The paper's quality detectors carry the dedicated reuse paths
    // (pair splicing, overlap maintenance, index rebase) — they get
    // the every-step comparison; the rest are checked at every 10th
    // accumulated state plus the final one.
    const bool hot = name == "pairwise" || name == "index" ||
                     name == "hybrid" || name == "incremental";
    ReplayStream(world.data, deltas, name, hot ? 1 : 10);
  }
}

TEST(UpdateProperty, StreamSurvivesSourceRetirement) {
  // Deterministic micro-stream whose middle step retracts every
  // observation of one source — the rebuilt universe shrinks, ids
  // shift, and the update path must still match the cold run.
  World world = MotivatingExample();
  const Dataset& base = world.data;
  std::vector<DatasetDelta> deltas;
  {
    DatasetDelta grow;
    grow.Set("R-prop", base.item_name(0), "v0");
    grow.Set("R-prop", base.item_name(1), "v1");
    deltas.push_back(std::move(grow));
  }
  {
    DatasetDelta retire;
    retire.Retract("R-prop", base.item_name(0));
    retire.Retract("R-prop", base.item_name(1));
    deltas.push_back(std::move(retire));
  }
  {
    DatasetDelta comeback;
    comeback.Set("R-prop", base.item_name(2), "v2");
    deltas.push_back(std::move(comeback));
  }
  ReplayStream(base, deltas, "index", /*check_every=*/1);
}

}  // namespace
}  // namespace copydetect
