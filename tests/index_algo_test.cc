#include "core/index_algo.h"

#include <gtest/gtest.h>

#include "core/pairwise.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::CopySet;
using testutil::ExampleFixture;
using testutil::PaperParams;

TEST(IndexDetector, MotivatingExampleVerdicts) {
  ExampleFixture fx;
  IndexDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  EXPECT_TRUE(result.IsCopying(2, 3));
  EXPECT_TRUE(result.IsCopying(2, 4));
  EXPECT_TRUE(result.IsCopying(3, 4));
  EXPECT_TRUE(result.IsCopying(6, 7));
  EXPECT_TRUE(result.IsCopying(6, 8));
  EXPECT_TRUE(result.IsCopying(7, 8));
  EXPECT_FALSE(result.IsCopying(0, 1));
}

TEST(IndexDetector, Example36Accounting) {
  // Ex. 3.6: 26 pairs occur in entries outside E̅; 51 shared values are
  // examined; 51*2 + 26*2 = 154 computations.
  ExampleFixture fx;
  IndexDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  EXPECT_EQ(detector.counters().pairs_tracked, 26u);
  EXPECT_EQ(detector.counters().values_examined, 51u);
  EXPECT_EQ(detector.counters().score_evals, 102u);
  EXPECT_EQ(detector.counters().finalize_evals, 52u);
  EXPECT_EQ(detector.counters().Total(), 154u);
}

TEST(IndexDetector, SkipsPairsSharingOnlyTailValues) {
  // Ex. 3.6: S0 and S5 share only values in E̅ (NY.Albany, TX.Austin)
  // and are never considered.
  ExampleFixture fx;
  IndexDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  // Untracked pairs report the identity posterior.
  EXPECT_EQ(result.Get(0, 5).p_indep, 1.0);
  EXPECT_FALSE(result.IsCopying(0, 5));
}

TEST(IndexDetector, TrackedPairScoresMatchPairwiseExactly) {
  // Prop. 3.5: INDEX obtains the same binary results as PAIRWISE, and
  // for tracked pairs the accumulated scores are the same sums.
  ExampleFixture fx;
  IndexDetector index_detector(PaperParams());
  PairwiseDetector pairwise(PaperParams());
  CopyResult index_result;
  CopyResult pairwise_result;
  ASSERT_TRUE(
      index_detector.DetectRound(fx.Input(), 1, &index_result).ok());
  ASSERT_TRUE(pairwise.DetectRound(fx.Input(), 1, &pairwise_result).ok());
  index_result.ForEach(
      [&](SourceId a, SourceId b, const PairPosterior& p) {
        PairPosterior q = pairwise_result.Get(a, b);
        EXPECT_NEAR(p.p_indep, q.p_indep, 1e-9)
            << "pair (" << a << "," << b << ")";
        EXPECT_NEAR(p.p_first_copies, q.p_first_copies, 1e-9);
      });
}

struct EquivalenceCase {
  uint64_t seed;
  size_t sources;
  size_t items;
};

class IndexEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(IndexEquivalenceTest, SameBinaryDecisionsAsPairwise) {
  EquivalenceCase param = GetParam();
  testutil::World world =
      testutil::SmallWorld(param.seed, param.sources, param.items);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  IndexDetector index_detector(PaperParams());
  PairwiseDetector pairwise(PaperParams());
  CopyResult index_result;
  CopyResult pairwise_result;
  ASSERT_TRUE(index_detector.DetectRound(in, 1, &index_result).ok());
  ASSERT_TRUE(pairwise.DetectRound(in, 1, &pairwise_result).ok());

  EXPECT_EQ(CopySet(index_result), CopySet(pairwise_result));
  // And INDEX does no more work than PAIRWISE.
  EXPECT_LE(index_detector.counters().Total(),
            pairwise.counters().Total());
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorlds, IndexEquivalenceTest,
    ::testing::Values(EquivalenceCase{11, 30, 150},
                      EquivalenceCase{12, 40, 200},
                      EquivalenceCase{13, 60, 300},
                      EquivalenceCase{14, 25, 500},
                      EquivalenceCase{15, 80, 120},
                      EquivalenceCase{16, 50, 250}));

TEST(IndexDetector, DeterministicAcrossRuns) {
  testutil::World world = testutil::SmallWorld(21);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  IndexDetector d1(PaperParams());
  IndexDetector d2(PaperParams());
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(d1.DetectRound(in, 1, &r1).ok());
  ASSERT_TRUE(d2.DetectRound(in, 1, &r2).ok());
  EXPECT_EQ(CopySet(r1), CopySet(r2));
  EXPECT_EQ(d1.counters().Total(), d2.counters().Total());
}

}  // namespace
}  // namespace copydetect
