// Adversarial tests of the INCREMENTAL machinery: drive DetectRound
// directly with hand-crafted probability trajectories — including
// abrupt big changes after the snapshot freeze — and require the same
// conclusions as a from-scratch HYBRID run on the final state.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/hybrid.h"
#include "core/incremental.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::PaperParams;

/// Runs `detector` through the probability trajectory, returning the
/// result of the last round.
CopyResult RunTrajectory(CopyDetector* detector, const Dataset& data,
                         const std::vector<std::vector<double>>& probs,
                         const std::vector<double>& accs) {
  CopyResult result;
  for (size_t round = 0; round < probs.size(); ++round) {
    DetectionInput in;
    in.data = &data;
    in.value_probs = &probs[round];
    in.accuracies = &accs;
    CD_CHECK_OK(detector->DetectRound(
        in, static_cast<int>(round) + 1, &result));
  }
  return result;
}

std::vector<std::vector<double>> DriftTrajectory(
    const std::vector<double>& base, size_t rounds, double step,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> direction(base.size());
  for (double& d : direction) d = rng.UniformDouble(-1.0, 1.0);
  std::vector<std::vector<double>> out;
  std::vector<double> current = base;
  for (size_t r = 0; r < rounds; ++r) {
    out.push_back(current);
    for (size_t v = 0; v < current.size(); ++v) {
      current[v] = std::clamp(current[v] + step * direction[v], 0.001,
                              0.999);
    }
  }
  return out;
}

TEST(IncrementalDeep, SmallDriftKeepsHybridAgreement) {
  testutil::World world = testutil::SmallWorld(601, 40, 300);
  testutil::WorldInput wi(world);
  auto trajectory = DriftTrajectory(wi.probs, 6, 0.01, 11);

  IncrementalDetector incremental(PaperParams());
  CopyResult inc_last = RunTrajectory(&incremental, world.data,
                                      trajectory, wi.accs);
  // Fresh hybrid on the final state.
  HybridDetector hybrid(PaperParams());
  DetectionInput final_in;
  final_in.data = &world.data;
  final_in.value_probs = &trajectory.back();
  final_in.accuracies = &wi.accs;
  CopyResult hybrid_last;
  CD_CHECK_OK(hybrid.DetectRound(final_in, 1, &hybrid_last));

  PrfScores prf = ComparePairs(inc_last, hybrid_last);
  EXPECT_GE(prf.f1, 0.95);
}

TEST(IncrementalDeep, BigProbabilityJumpForcesCorrectFlips) {
  // Rounds 1-3 see the normal probabilities; round 4 inverts them for
  // a handful of heavily-shared values — every affected pair must be
  // re-decided the way a from-scratch run would.
  testutil::World world = testutil::SmallWorld(602, 30, 200);
  testutil::WorldInput wi(world);
  std::vector<std::vector<double>> trajectory(4, wi.probs);
  // Invert the probabilities of the most-shared slots.
  std::vector<double>& last = trajectory.back();
  size_t flipped = 0;
  for (SlotId v = 0; v < world.data.num_slots() && flipped < 20; ++v) {
    if (world.data.providers(v).size() >= 3) {
      last[v] = std::clamp(1.0 - last[v], 0.001, 0.999);
      ++flipped;
    }
  }
  ASSERT_GT(flipped, 0u);

  IncrementalDetector incremental(PaperParams());
  CopyResult inc_last = RunTrajectory(&incremental, world.data,
                                      trajectory, wi.accs);
  HybridDetector hybrid(PaperParams());
  DetectionInput final_in;
  final_in.data = &world.data;
  final_in.value_probs = &last;
  final_in.accuracies = &wi.accs;
  CopyResult hybrid_last;
  CD_CHECK_OK(hybrid.DetectRound(final_in, 1, &hybrid_last));

  PrfScores prf = ComparePairs(inc_last, hybrid_last);
  EXPECT_GE(prf.f1, 0.9);
}

TEST(IncrementalDeep, BigAccuracyJumpMigratesPairsToExact) {
  testutil::World world = testutil::SmallWorld(603, 30, 200);
  testutil::WorldInput wi(world);
  std::vector<std::vector<double>> trajectory(4, wi.probs);

  IncrementalDetector detector(PaperParams());
  CopyResult result;
  std::vector<double> accs = wi.accs;
  for (int round = 1; round <= 3; ++round) {
    DetectionInput in;
    in.data = &world.data;
    in.value_probs = &wi.probs;
    in.accuracies = &accs;
    CD_CHECK_OK(detector.DetectRound(in, round, &result));
  }
  // Round 4: one source's accuracy collapses far beyond rho_accuracy.
  accs[0] = std::max(0.05, accs[0] - 0.5);
  DetectionInput in;
  in.data = &world.data;
  in.value_probs = &wi.probs;
  in.accuracies = &accs;
  CD_CHECK_OK(detector.DetectRound(in, 4, &result));
  const auto& stats = detector.round_stats().back();
  EXPECT_GT(stats.exact + stats.pass3, 0u);

  // And its pairs must match a fresh exact evaluation.
  HybridDetector hybrid(PaperParams());
  CopyResult fresh;
  CD_CHECK_OK(hybrid.DetectRound(in, 1, &fresh));
  for (SourceId other = 1; other < world.data.num_sources(); ++other) {
    EXPECT_EQ(result.IsCopying(0, other), fresh.IsCopying(0, other))
        << "pair (0," << other << ")";
  }
}

TEST(IncrementalDeep, ConstantInputIsNearlyAllPassOne) {
  // With literally nothing changing, rounds >= 3 must resolve almost
  // everything in pass 1 and never flip. A handful of pairs that were
  // decided early with unseen post-decision evidence legitimately need
  // the exact pass-2 check each round (they are the paper's step-4/5
  // residue); they must stay a tiny fraction.
  testutil::World world = testutil::SmallWorld(604, 30, 200);
  testutil::WorldInput wi(world);
  std::vector<std::vector<double>> trajectory(5, wi.probs);
  IncrementalDetector detector(PaperParams());
  RunTrajectory(&detector, world.data, trajectory, wi.accs);
  const auto& stats = detector.round_stats();
  ASSERT_EQ(stats.size(), 5u);
  for (size_t i = 2; i < stats.size(); ++i) {
    uint64_t total = stats[i].pass1 + stats[i].pass2 + stats[i].pass3 +
                     stats[i].exact;
    EXPECT_EQ(stats[i].pass3, 0u) << "round " << i + 1;
    EXPECT_EQ(stats[i].exact, 0u);
    EXPECT_GT(stats[i].pass1, 0u);
    EXPECT_LE(static_cast<double>(stats[i].pass2),
              0.05 * static_cast<double>(total));
  }
}

TEST(IncrementalDeep, RepeatedTrajectoriesAreDeterministic) {
  testutil::World world = testutil::SmallWorld(605, 25, 150);
  testutil::WorldInput wi(world);
  auto trajectory = DriftTrajectory(wi.probs, 5, 0.02, 3);
  IncrementalDetector d1(PaperParams());
  IncrementalDetector d2(PaperParams());
  CopyResult r1 = RunTrajectory(&d1, world.data, trajectory, wi.accs);
  CopyResult r2 = RunTrajectory(&d2, world.data, trajectory, wi.accs);
  EXPECT_EQ(testutil::CopySet(r1), testutil::CopySet(r2));
  EXPECT_EQ(d1.counters().Total(), d2.counters().Total());
}

}  // namespace
}  // namespace copydetect
