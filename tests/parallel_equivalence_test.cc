// Parallel/sequential equivalence of the executor-backed scan paths.
//
// The parallel paths shard by pair ownership (see IndexScan and
// BoundedScan), which keeps every pair's floating-point accumulation
// in exact sequential order — so the contract is *bit-identical*
// CopyResults, not approximate agreement, at every thread count
// including the degenerate "more threads than index entries" case.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "core/detector.h"
#include "core/detector_registry.h"
#include "core/index_algo.h"
#include "core/parallel_index.h"
#include "fusion/truth_finder.h"
#include "simjoin/intersect.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::PaperParams;

/// Asserts `got` and `want` are the same result bit for bit: same
/// tracked pairs, every posterior double exactly equal.
void ExpectBitIdentical(const CopyResult& got, const CopyResult& want) {
  EXPECT_EQ(got.NumTracked(), want.NumTracked());
  size_t checked = 0;
  want.ForEach([&](SourceId a, SourceId b, const PairPosterior& w) {
    PairPosterior g = got.Get(a, b);
    EXPECT_EQ(g.p_indep, w.p_indep) << "pair " << a << "," << b;
    EXPECT_EQ(g.p_first_copies, w.p_first_copies)
        << "pair " << a << "," << b;
    EXPECT_EQ(g.p_second_copies, w.p_second_copies)
        << "pair " << a << "," << b;
    ++checked;
  });
  EXPECT_EQ(checked, want.NumTracked());
}

/// Runs `kind` serially and with an executor of `threads` workers and
/// compares results and work counters.
void CheckDetectorEquivalence(DetectorKind kind, const DetectionInput& in,
                              size_t threads) {
  auto serial = MakeDetector(kind, PaperParams());
  CopyResult want;
  ASSERT_TRUE(serial->DetectRound(in, 1, &want).ok());

  Executor executor(threads);
  DetectionParams params = PaperParams();
  params.executor = &executor;
  auto parallel = MakeDetector(kind, params);
  CopyResult got;
  ASSERT_TRUE(parallel->DetectRound(in, 1, &got).ok());

  ExpectBitIdentical(got, want);
  EXPECT_EQ(parallel->counters().score_evals,
            serial->counters().score_evals);
  EXPECT_EQ(parallel->counters().entries_scanned,
            serial->counters().entries_scanned);
  EXPECT_EQ(parallel->counters().pairs_tracked,
            serial->counters().pairs_tracked);
  EXPECT_EQ(parallel->counters().Total(), serial->counters().Total());
}

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<size_t> {};

// 1 exercises the serial fallback, 2/4/7 real sharding (7 is odd on
// purpose: uneven pair ownership; 4 is the acceptance width of the
// hot-path layout rework).
INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 4, 7));

TEST_P(ParallelEquivalenceTest, IndexBitIdentical) {
  testutil::World world = testutil::SmallWorld(601, 40, 300);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kIndex, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, PairwiseBitIdentical) {
  testutil::World world = testutil::SmallWorld(602, 35, 250);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kPairwise, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, HybridBitIdentical) {
  testutil::World world = testutil::SmallWorld(603, 40, 300);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kHybrid, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, BoundPlusBitIdentical) {
  testutil::World world = testutil::SmallWorld(604, 35, 250);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kBoundPlus, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, ParallelIndexMatchesSequentialIndex) {
  testutil::World world = testutil::SmallWorld(605, 40, 300);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  IndexDetector sequential(PaperParams());
  CopyResult want;
  ASSERT_TRUE(sequential.DetectRound(in, 1, &want).ok());

  ParallelIndexDetector parallel(PaperParams(), GetParam());
  CopyResult got;
  ASSERT_TRUE(parallel.DetectRound(in, 1, &got).ok());
  ExpectBitIdentical(got, want);
}

TEST_P(ParallelEquivalenceTest, FusionLoopBitIdentical) {
  // End-to-end: the whole iterative loop — detection rounds plus the
  // parallel per-item / per-source aggregation — must reproduce the
  // serial run exactly.
  testutil::World world = testutil::SmallWorld(606, 30, 200);

  FusionOptions serial_options;
  serial_options.params = PaperParams();
  serial_options.max_rounds = 4;
  auto serial_detector =
      MakeDetector(DetectorKind::kHybrid, serial_options.params);
  auto want =
      IterativeFusion(serial_options).Run(world.data, serial_detector.get());
  ASSERT_TRUE(want.ok());

  Executor executor(GetParam());
  FusionOptions options = serial_options;
  options.params.executor = &executor;
  auto detector = MakeDetector(DetectorKind::kHybrid, options.params);
  auto got = IterativeFusion(options).Run(world.data, detector.get());
  ASSERT_TRUE(got.ok());

  EXPECT_EQ(got->rounds, want->rounds);
  EXPECT_EQ(got->converged, want->converged);
  EXPECT_EQ(got->value_probs, want->value_probs);
  EXPECT_EQ(got->accuracies, want->accuracies);
  EXPECT_EQ(got->truth, want->truth);
  ExpectBitIdentical(got->copies, want->copies);
}

TEST(ParallelEquivalence, EveryRegisteredDetectorBitIdenticalAtFourThreads) {
  // Registry-driven: a detector added by one CD_REGISTER_DETECTOR
  // stanza is covered here with no test change. Serial vs 1-thread
  // executor vs 4-thread executor, all bit-identical.
  testutil::World world = testutil::SmallWorld(607, 40, 300);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  for (const std::string& name : ListDetectors()) {
    SCOPED_TRACE(name);
    auto serial = DetectorRegistry::Global().Create(name, PaperParams());
    ASSERT_TRUE(serial.ok()) << serial.status().message();
    CopyResult want;
    ASSERT_TRUE((*serial)->DetectRound(in, 1, &want).ok());

    for (size_t threads : {size_t{1}, size_t{4}}) {
      Executor executor(threads);
      DetectionParams params = PaperParams();
      params.executor = &executor;
      auto parallel = DetectorRegistry::Global().Create(name, params);
      ASSERT_TRUE(parallel.ok()) << parallel.status().message();
      CopyResult got;
      ASSERT_TRUE((*parallel)->DetectRound(in, 1, &got).ok());
      ExpectBitIdentical(got, want);
      EXPECT_EQ((*parallel)->counters().score_evals,
                (*serial)->counters().score_evals)
          << name << " @ " << threads;
    }
  }
}

TEST(ParallelEquivalence, ForcedIntersectionKernelsBitIdentical) {
  // The vector intersection kernel feeds ComputePairScores and the
  // overlap counting every detector consumes; dispatch choice (scalar,
  // galloping, SIMD) must never leak into results. Forcing each kernel
  // for a full detector round over every registered detector pins the
  // SIMD-vs-portable seam at the output level, not just the kernel
  // level (intersect_test.cc covers that).
  using intersect_internal::ForceKernelForTest;
  using intersect_internal::Kernel;
  testutil::World world = testutil::SmallWorld(608, 35, 250);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  struct KernelReset {
    ~KernelReset() { ForceKernelForTest(Kernel::kAuto); }
  } reset;

  for (const std::string& name : ListDetectors()) {
    SCOPED_TRACE(name);
    ForceKernelForTest(Kernel::kScalar);
    auto scalar_det =
        DetectorRegistry::Global().Create(name, PaperParams());
    ASSERT_TRUE(scalar_det.ok());
    CopyResult want;
    ASSERT_TRUE((*scalar_det)->DetectRound(in, 1, &want).ok());

    std::vector<Kernel> others = {Kernel::kGalloping, Kernel::kAuto};
    if (intersect_internal::SimdAvailable()) {
      others.push_back(Kernel::kSimd);
    }
    for (Kernel kernel : others) {
      ForceKernelForTest(kernel);
      auto det = DetectorRegistry::Global().Create(name, PaperParams());
      ASSERT_TRUE(det.ok());
      CopyResult got;
      ASSERT_TRUE((*det)->DetectRound(in, 1, &got).ok());
      ExpectBitIdentical(got, want);
    }
    ForceKernelForTest(Kernel::kAuto);
  }
}

TEST(ParallelEquivalence, MoreThreadsThanEntriesDegenerateCase) {
  // The running example has only a handful of index entries; a 64-way
  // executor leaves most shards empty and must still be exact.
  testutil::ExampleFixture fx;
  for (DetectorKind kind :
       {DetectorKind::kPairwise, DetectorKind::kIndex,
        DetectorKind::kHybrid}) {
    CheckDetectorEquivalence(kind, fx.Input(), 64);
  }
}

}  // namespace
}  // namespace copydetect
