// Parallel/sequential equivalence of the executor-backed scan paths.
//
// The parallel paths shard by pair ownership (see IndexScan and
// BoundedScan), which keeps every pair's floating-point accumulation
// in exact sequential order — so the contract is *bit-identical*
// CopyResults, not approximate agreement, at every thread count
// including the degenerate "more threads than index entries" case.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "core/detector.h"
#include "core/index_algo.h"
#include "core/parallel_index.h"
#include "fusion/truth_finder.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::PaperParams;

/// Asserts `got` and `want` are the same result bit for bit: same
/// tracked pairs, every posterior double exactly equal.
void ExpectBitIdentical(const CopyResult& got, const CopyResult& want) {
  EXPECT_EQ(got.NumTracked(), want.NumTracked());
  size_t checked = 0;
  want.ForEach([&](SourceId a, SourceId b, const PairPosterior& w) {
    PairPosterior g = got.Get(a, b);
    EXPECT_EQ(g.p_indep, w.p_indep) << "pair " << a << "," << b;
    EXPECT_EQ(g.p_first_copies, w.p_first_copies)
        << "pair " << a << "," << b;
    EXPECT_EQ(g.p_second_copies, w.p_second_copies)
        << "pair " << a << "," << b;
    ++checked;
  });
  EXPECT_EQ(checked, want.NumTracked());
}

/// Runs `kind` serially and with an executor of `threads` workers and
/// compares results and work counters.
void CheckDetectorEquivalence(DetectorKind kind, const DetectionInput& in,
                              size_t threads) {
  auto serial = MakeDetector(kind, PaperParams());
  CopyResult want;
  ASSERT_TRUE(serial->DetectRound(in, 1, &want).ok());

  Executor executor(threads);
  DetectionParams params = PaperParams();
  params.executor = &executor;
  auto parallel = MakeDetector(kind, params);
  CopyResult got;
  ASSERT_TRUE(parallel->DetectRound(in, 1, &got).ok());

  ExpectBitIdentical(got, want);
  EXPECT_EQ(parallel->counters().score_evals,
            serial->counters().score_evals);
  EXPECT_EQ(parallel->counters().entries_scanned,
            serial->counters().entries_scanned);
  EXPECT_EQ(parallel->counters().pairs_tracked,
            serial->counters().pairs_tracked);
  EXPECT_EQ(parallel->counters().Total(), serial->counters().Total());
}

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<size_t> {};

// 1 exercises the serial fallback, 2 and 7 real sharding (7 is odd on
// purpose: uneven pair ownership).
INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 7));

TEST_P(ParallelEquivalenceTest, IndexBitIdentical) {
  testutil::World world = testutil::SmallWorld(601, 40, 300);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kIndex, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, PairwiseBitIdentical) {
  testutil::World world = testutil::SmallWorld(602, 35, 250);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kPairwise, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, HybridBitIdentical) {
  testutil::World world = testutil::SmallWorld(603, 40, 300);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kHybrid, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, BoundPlusBitIdentical) {
  testutil::World world = testutil::SmallWorld(604, 35, 250);
  testutil::WorldInput wi(world);
  CheckDetectorEquivalence(DetectorKind::kBoundPlus, wi.Input(world),
                           GetParam());
}

TEST_P(ParallelEquivalenceTest, ParallelIndexMatchesSequentialIndex) {
  testutil::World world = testutil::SmallWorld(605, 40, 300);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);

  IndexDetector sequential(PaperParams());
  CopyResult want;
  ASSERT_TRUE(sequential.DetectRound(in, 1, &want).ok());

  ParallelIndexDetector parallel(PaperParams(), GetParam());
  CopyResult got;
  ASSERT_TRUE(parallel.DetectRound(in, 1, &got).ok());
  ExpectBitIdentical(got, want);
}

TEST_P(ParallelEquivalenceTest, FusionLoopBitIdentical) {
  // End-to-end: the whole iterative loop — detection rounds plus the
  // parallel per-item / per-source aggregation — must reproduce the
  // serial run exactly.
  testutil::World world = testutil::SmallWorld(606, 30, 200);

  FusionOptions serial_options;
  serial_options.params = PaperParams();
  serial_options.max_rounds = 4;
  auto serial_detector =
      MakeDetector(DetectorKind::kHybrid, serial_options.params);
  auto want =
      IterativeFusion(serial_options).Run(world.data, serial_detector.get());
  ASSERT_TRUE(want.ok());

  Executor executor(GetParam());
  FusionOptions options = serial_options;
  options.params.executor = &executor;
  auto detector = MakeDetector(DetectorKind::kHybrid, options.params);
  auto got = IterativeFusion(options).Run(world.data, detector.get());
  ASSERT_TRUE(got.ok());

  EXPECT_EQ(got->rounds, want->rounds);
  EXPECT_EQ(got->converged, want->converged);
  EXPECT_EQ(got->value_probs, want->value_probs);
  EXPECT_EQ(got->accuracies, want->accuracies);
  EXPECT_EQ(got->truth, want->truth);
  ExpectBitIdentical(got->copies, want->copies);
}

TEST(ParallelEquivalence, MoreThreadsThanEntriesDegenerateCase) {
  // The running example has only a handful of index entries; a 64-way
  // executor leaves most shards empty and must still be exact.
  testutil::ExampleFixture fx;
  for (DetectorKind kind :
       {DetectorKind::kPairwise, DetectorKind::kIndex,
        DetectorKind::kHybrid}) {
    CheckDetectorEquivalence(kind, fx.Input(), 64);
  }
}

}  // namespace
}  // namespace copydetect
