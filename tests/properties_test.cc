// Cross-cutting property suites: invariants that must hold across the
// whole (alpha, s, n) parameter space and across random worlds.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bayes.h"
#include "core/hybrid.h"
#include "core/index_algo.h"
#include "core/inverted_index.h"
#include "core/pairwise.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace copydetect {
namespace {

struct ParamCase {
  double alpha;
  double s;
  double n;
};

DetectionParams Make(const ParamCase& c) {
  DetectionParams params;
  params.alpha = c.alpha;
  params.s = c.s;
  params.n = c.n;
  return params;
}

class ParamSpaceTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ParamSpaceTest, ThresholdOrdering) {
  DetectionParams params = Make(GetParam());
  ASSERT_TRUE(params.Validate().ok());
  // theta_cp = theta_ind + ln 2 > theta_ind always.
  EXPECT_GT(params.theta_cp(), params.theta_ind());
  EXPECT_NEAR(params.theta_cp() - params.theta_ind(), std::log(2.0),
              1e-12);
  EXPECT_LT(params.different_penalty(), 0.0);
}

TEST_P(ParamSpaceTest, EntryScoreDominatesPairContributions) {
  // Prop. 3.4's third bullet relies on M̂ being an upper bound for any
  // provider pair's contribution.
  DetectionParams params = Make(GetParam());
  Rng rng(0xabcd);
  for (int trial = 0; trial < 100; ++trial) {
    size_t k = 2 + static_cast<size_t>(rng.NextBelow(5));
    std::vector<double> accs(k);
    for (double& a : accs) a = rng.UniformDouble(0.02, 0.98);
    double p = rng.UniformDouble(0.005, 0.995);
    double m_hat = MaxEntryContribution(accs, p, params);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        EXPECT_LE(SharedContribution(p, accs[i], accs[j], params),
                  m_hat + 1e-9);
      }
    }
  }
}

TEST_P(ParamSpaceTest, IndexMatchesPairwiseDecisions) {
  DetectionParams params = Make(GetParam());
  testutil::World world = testutil::SmallWorld(777, 30, 150);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  IndexDetector index_detector(params);
  PairwiseDetector pairwise(params);
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(index_detector.DetectRound(in, 1, &r1).ok());
  ASSERT_TRUE(pairwise.DetectRound(in, 1, &r2).ok());
  EXPECT_EQ(testutil::CopySet(r1), testutil::CopySet(r2));
}

TEST_P(ParamSpaceTest, PosteriorIsMonotoneInScores) {
  DetectionParams params = Make(GetParam());
  double prev = 1.0;
  for (double c = -10.0; c <= 10.0; c += 0.5) {
    double p = NoCopyPosterior(c, c, params);
    EXPECT_LT(p, prev + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamSpaceTest,
    ::testing::Values(ParamCase{0.1, 0.8, 50.0},
                      ParamCase{0.05, 0.6, 20.0},
                      ParamCase{0.2, 0.9, 100.0},
                      ParamCase{0.22, 0.4, 10.0},
                      ParamCase{0.15, 0.2, 5.0},
                      ParamCase{0.01, 0.99, 500.0}));

TEST(Invariants, CopyingNeedsSharedFalseValues) {
  // A world with perfectly accurate sources and no copiers must show
  // no copying at all: shared true values are weak evidence.
  WorldConfig config;
  config.num_sources = 20;
  config.num_items = 200;
  config.false_pool = 10;
  config.coverage = {.frac_small = 0.0,
                     .small_lo = 0.5,
                     .small_hi = 0.5,
                     .big_lo = 0.8,
                     .big_hi = 1.0};
  config.accuracy = {.frac_low = 0.0,
                     .low_lo = 0.9,
                     .low_hi = 0.95,
                     .high_lo = 0.97,
                     .high_hi = 0.99};
  config.copying.num_groups = 0;
  auto world_or = GenerateWorld(config, 31337);
  ASSERT_TRUE(world_or.ok());
  testutil::WorldInput wi(*world_or);
  DetectionInput in = wi.Input(*world_or);
  PairwiseDetector detector(testutil::PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(in, 1, &result).ok());
  // Almost no pair may be flagged. (Not exactly zero: a pair of
  // accurate sources that *happens* to agree on every one of ~130
  // shared items is legitimately suspicious under the model — an
  // independent pair should disagree a few percent of the time.)
  EXPECT_LE(result.CopyingPairs().size(), 2u);
}

TEST(Invariants, PlantedCopiersAreFound) {
  // Conversely, low-accuracy copier cliques must be detected.
  for (uint64_t seed : {3ULL, 4ULL, 5ULL}) {
    testutil::World world = testutil::SmallWorld(seed, 40, 300);
    testutil::WorldInput wi(world);
    DetectionInput in = wi.Input(world);
    HybridDetector detector(testutil::PaperParams());
    CopyResult result;
    ASSERT_TRUE(detector.DetectRound(in, 1, &result).ok());
    PrfScores prf = ComparePairsToTruth(result, world.copy_pairs);
    EXPECT_GE(prf.recall, 0.6) << "seed " << seed;
  }
}

TEST(Invariants, TailSkippingNeverDropsCopyingPairs) {
  // Any pair sharing only tail values has total possible score below
  // theta_ind — verify empirically that no copying pair is lost versus
  // a no-tail scan (FAGININPUT-style full accumulation).
  testutil::World world = testutil::SmallWorld(99, 40, 250);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  DetectionParams params = testutil::PaperParams();

  IndexDetector with_tail(params);
  CopyResult tail_result;
  ASSERT_TRUE(with_tail.DetectRound(in, 1, &tail_result).ok());

  PairwiseDetector exhaustive(params);
  CopyResult full_result;
  ASSERT_TRUE(exhaustive.DetectRound(in, 1, &full_result).ok());

  for (uint64_t key : full_result.CopyingPairs()) {
    EXPECT_TRUE(tail_result.IsCopying(PairFirst(key), PairSecond(key)))
        << PairFirst(key) << "," << PairSecond(key);
  }
}

TEST(Invariants, CountersAreAdditive) {
  Counters a;
  a.score_evals = 10;
  a.bound_evals = 5;
  a.finalize_evals = 2;
  Counters b;
  b.score_evals = 1;
  b.pairs_tracked = 3;
  a += b;
  EXPECT_EQ(a.score_evals, 11u);
  EXPECT_EQ(a.Total(), 18u);
  EXPECT_EQ(a.pairs_tracked, 3u);
  a.Reset();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(Invariants, ParamsValidateRejectsBadInput) {
  DetectionParams params;
  params.alpha = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params.alpha = 0.5;
  EXPECT_FALSE(params.Validate().ok());
  params.alpha = 0.1;
  params.s = 1.0;
  EXPECT_FALSE(params.Validate().ok());
  params.s = 0.8;
  params.n = 0.5;
  EXPECT_FALSE(params.Validate().ok());
  params.n = 50;
  EXPECT_TRUE(params.Validate().ok());
}

}  // namespace
}  // namespace copydetect
