// The warm-start acceptance bar: Session::Save -> Session::Load must
// hand back a session whose report() is bit-identical to the saver's,
// and whose subsequent Update / Start+Step behave bit-identically to
// the session that never left memory — for every registered detector,
// at 1 and 4 threads (the suite runs under asan-ubsan and tsan in
// CI). Plus the facade-level failure modes: Save preconditions,
// options round trip, and Load refusing inconsistent files.
#include "copydetect/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshot_io.h"

namespace copydetect {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void ExpectSameCopies(const CopyResult& got, const CopyResult& want) {
  EXPECT_EQ(got.NumTracked(), want.NumTracked());
  want.ForEach([&](SourceId a, SourceId b, const PairPosterior& w) {
    PairPosterior g = got.Get(a, b);
    EXPECT_EQ(g.p_indep, w.p_indep) << "pair " << a << "," << b;
    EXPECT_EQ(g.p_first_copies, w.p_first_copies)
        << "pair " << a << "," << b;
    EXPECT_EQ(g.p_second_copies, w.p_second_copies)
        << "pair " << a << "," << b;
  });
}

/// Bitwise equality of everything semantic a run produces (timings
/// and detector counters are per-process by design).
void ExpectSameFusion(const FusionResult& got,
                      const FusionResult& want) {
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.converged, want.converged);
  ASSERT_EQ(got.value_probs.size(), want.value_probs.size());
  for (size_t v = 0; v < want.value_probs.size(); ++v) {
    EXPECT_EQ(got.value_probs[v], want.value_probs[v]) << "slot " << v;
  }
  ASSERT_EQ(got.accuracies.size(), want.accuracies.size());
  for (size_t s = 0; s < want.accuracies.size(); ++s) {
    EXPECT_EQ(got.accuracies[s], want.accuracies[s]) << "source " << s;
  }
  EXPECT_EQ(got.truth, want.truth);
  ExpectSameCopies(got.copies, want.copies);
}

void ExpectSameReport(Report got, Report want) {
  EXPECT_EQ(got.detector, want.detector);
  ExpectSameFusion(got.fusion, want.fusion);
  EXPECT_EQ(got.graph.NumPairs(), want.graph.NumPairs());
  EXPECT_EQ(got.graph.NumSources(), want.graph.NumSources());
  EXPECT_EQ(got.graph.clusters.size(), want.graph.clusters.size());
}

/// A feed-like delta: overwrite, add, retract, new source, new item.
DatasetDelta ExampleDelta(const Dataset& base) {
  DatasetDelta delta;
  delta.Set(base.source_name(0), base.item_name(0), "Newark");
  delta.Set(base.source_name(0), base.item_name(3), "Tampa");
  delta.Retract(base.source_name(9), base.item_name(4));
  delta.Set("S-feed", base.item_name(1), "Yuma");
  delta.Set(base.source_name(2), "CO", "Denver");
  return delta;
}

DatasetDelta FollowUpDelta(const Dataset& base) {
  DatasetDelta delta;
  delta.Set(base.source_name(4), base.item_name(0), "Trenton");
  delta.Retract(base.source_name(2), "CO");
  delta.Set("S-feed", base.item_name(2), "Albany");
  return delta;
}

/// The scenario driver: Run, Save, Load, then drive the live and the
/// loaded session through the same updates — every report pair must
/// match bit for bit.
void ExpectWarmStartEquivalence(const Dataset& base,
                                const std::vector<DatasetDelta>& deltas,
                                SessionOptions options,
                                const std::string& tag) {
  options.online_updates = true;
  const std::string path = TempPath("warm_" + tag + ".cdsnap");
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  auto first = live->Run(base);
  CD_CHECK_OK(first.status());
  CD_CHECK_OK(live->Save(path));

  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  EXPECT_EQ(loaded->detector_name(), live->detector_name());
  EXPECT_EQ(loaded->threads(), live->threads());
  ASSERT_NE(loaded->current_data(), nullptr);
  EXPECT_EQ(loaded->current_data()->num_observations(),
            base.num_observations());
  // The restored report is available without any re-run — and its
  // pair map keeps the saver's exact table layout (downstream
  // iteration order is part of the restored state).
  ExpectSameReport(loaded->report(), live->report());
  EXPECT_EQ(loaded->report().copies().raw_map().raw_keys(),
            live->report().copies().raw_map().raw_keys());

  // Load-then-Update == never-persisted-Update, chained (the second
  // update replays against the first's tape on both sides).
  for (const DatasetDelta& delta : deltas) {
    CD_CHECK_OK(live->Update(delta));
    CD_CHECK_OK(loaded->Update(delta));
    EXPECT_EQ(loaded->last_update_stats().incremental,
              live->last_update_stats().incremental);
    ExpectSameReport(loaded->report(), live->report());
  }

  // A snapshot taken *after* updates persists the update run's tape;
  // a second generation of process must still track the live one.
  if (!deltas.empty()) {
    CD_CHECK_OK(live->Save(path));
    auto reloaded = Session::Load(path, LoadOptions());
    CD_CHECK_OK(reloaded.status());
    std::remove(path.c_str());
    ExpectSameReport(reloaded->report(), live->report());
    DatasetDelta again;  // a plain overwrite applies on any snapshot
    const Dataset& current = *live->current_data();
    again.Set(current.source_name(0), current.item_name(0),
              "warm-again");
    CD_CHECK_OK(live->Update(again));
    CD_CHECK_OK(reloaded->Update(again));
    ExpectSameReport(reloaded->report(), live->report());
  }
}

TEST(SessionSnapshot, WarmStartEveryDetectorThreads1And4) {
  World world = MotivatingExample();
  const std::vector<DatasetDelta> deltas = {
      ExampleDelta(world.data), FollowUpDelta(world.data)};
  for (const std::string& name : ListDetectors()) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      SessionOptions options;
      options.detector = name;
      options.threads = threads;
      ExpectWarmStartEquivalence(
          world.data, deltas, options,
          name + "_t" + std::to_string(threads));
    }
  }
}

TEST(SessionSnapshot, WarmStartGeneratedWorld) {
  auto world = MakeWorldByName("book-cs", 0.1, 11);
  CD_CHECK_OK(world.status());
  const Dataset& base = world->data;
  // A feed push by one source plus a brand-new source.
  DatasetDelta delta;
  std::span<const ItemId> items = base.items_of(3);
  for (size_t i = 0; i < items.size() && i < 5; ++i) {
    delta.Set(base.source_name(3), base.item_name(items[i]),
              "feed-" + std::to_string(i));
  }
  delta.Set("new-feed", base.item_name(items[0]), "feed-0");
  for (const std::string& name :
       {std::string("pairwise"), std::string("index"),
        std::string("incremental")}) {
    SCOPED_TRACE(name);
    SessionOptions options;
    options.detector = name;
    options.n = world->suggested_n;
    ExpectWarmStartEquivalence(base, {delta}, options, "gen_" + name);
  }
}

TEST(SessionSnapshot, StreamingAfterLoadMatchesLiveSession) {
  World world = MotivatingExample();
  const std::string path = TempPath("stream_after_load.cdsnap");
  SessionOptions options;
  options.detector = "index";
  options.threads = 4;
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());

  // A fresh streaming run on each session, stepped in lockstep: the
  // loaded session must track the live one round by round.
  CD_CHECK_OK(live->Start(world.data));
  CD_CHECK_OK(loaded->Start(world.data));
  while (true) {
    auto live_step = live->Step();
    auto loaded_step = loaded->Step();
    CD_CHECK_OK(live_step.status());
    CD_CHECK_OK(loaded_step.status());
    ASSERT_EQ(*loaded_step, *live_step);
    if (!*live_step) break;
    ExpectSameFusion(loaded->report().fusion, live->report().fusion);
  }
  ExpectSameReport(loaded->report(), live->report());
}

TEST(SessionSnapshot, FinishedStreamingRunSavesWithoutOnlineUpdates) {
  World world = MotivatingExample();
  const std::string path = TempPath("streaming_save.cdsnap");
  SessionOptions options;
  options.detector = "hybrid";
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());
  CD_CHECK_OK(session->Start(world.data));
  while (true) {
    auto stepped = session->Step();
    CD_CHECK_OK(stepped.status());
    if (!*stepped) break;
  }
  CD_CHECK_OK(session->Save(path));
  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  ExpectSameReport(loaded->report(), session->report());
}

TEST(SessionSnapshot, RunAfterLoadSupersedesTheLoadedSnapshot) {
  // A loaded session later used for a plain Run on *other* data must
  // not keep serving (or re-persist) the stale loaded data set.
  World world = MotivatingExample();
  const std::string path = TempPath("supersede.cdsnap");
  SessionOptions options;
  options.detector = "index";
  auto saver = Session::Create(options);
  CD_CHECK_OK(saver.status());
  CD_CHECK_OK(saver->Start(world.data));
  while (true) {
    auto stepped = saver->Step();
    CD_CHECK_OK(stepped.status());
    if (!*stepped) break;
  }
  CD_CHECK_OK(saver->Save(path));

  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  auto other = MakeWorldByName("book-cs", 0.05, 3);
  CD_CHECK_OK(other.status());
  // Without online_updates, Run hands its state to the caller; the
  // loaded snapshot is superseded, so nothing stale remains to save.
  CD_CHECK_OK(loaded->Run(other->data).status());
  EXPECT_EQ(loaded->current_data(), nullptr);
  Status stale = loaded->Save(TempPath("stale.cdsnap"));
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);

  // A finished *streaming* run on the other data saves that data.
  CD_CHECK_OK(loaded->Start(other->data));
  while (true) {
    auto stepped = loaded->Step();
    CD_CHECK_OK(stepped.status());
    if (!*stepped) break;
  }
  CD_CHECK_OK(loaded->Save(path));
  auto reloaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(reloaded.status());
  std::remove(path.c_str());
  EXPECT_EQ(reloaded->current_data()->num_sources(),
            other->data.num_sources());
  ExpectSameReport(reloaded->report(), loaded->report());
}

TEST(SessionSnapshot, AccuracyOnlySessionRoundTrips) {
  World world = MotivatingExample();
  const std::string path = TempPath("accuracy_only.cdsnap");
  SessionOptions options;
  options.use_copy_detection = false;
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  ExpectSameReport(loaded->report(), live->report());
  DatasetDelta delta = ExampleDelta(world.data);
  CD_CHECK_OK(live->Update(delta));
  CD_CHECK_OK(loaded->Update(delta));
  ExpectSameReport(loaded->report(), live->report());
}

TEST(SessionSnapshot, SampledSessionRoundTrips) {
  auto world = MakeWorldByName("book-cs", 0.1, 19);
  CD_CHECK_OK(world.status());
  const std::string path = TempPath("sampled.cdsnap");
  SessionOptions options;
  options.detector = "index";
  options.n = world->suggested_n;
  options.sample_rate = 0.5;
  options.online_updates = true;  // no recorder with sampling: Update
                                  // re-runs cold on both sessions
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world->data).status());
  CD_CHECK_OK(live->Save(path));
  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  ExpectSameReport(loaded->report(), live->report());
  DatasetDelta delta;
  delta.Set(world->data.source_name(0),
            world->data.item_name(world->data.items_of(0)[0]),
            "resampled");
  CD_CHECK_OK(live->Update(delta));
  CD_CHECK_OK(loaded->Update(delta));
  ExpectSameReport(loaded->report(), live->report());
}

TEST(SessionSnapshot, OptionsRoundTripExactly) {
  World world = MotivatingExample();
  const std::string path = TempPath("options.cdsnap");
  SessionOptions options;
  options.detector = "boundplus";
  options.alpha = 0.12;
  options.s = 0.75;
  options.n = 17.5;
  options.hybrid_threshold = 9;
  options.rho_accuracy = 0.3;
  options.rho_value = 0.9;
  options.max_rounds = 7;
  options.epsilon = 2e-4;
  options.initial_accuracy = 0.7;
  options.damping = 0.3;
  options.threads = 3;
  options.sample_method = SamplingMethod::kByCell;
  options.sample_min_items_per_source = 6;
  options.sample_seed = 99;
  options.online_updates = true;
  options.update_rebuild_fraction = 0.4;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto loaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(loaded.status());
  std::remove(path.c_str());
  const SessionOptions& got = loaded->options();
  EXPECT_EQ(got.detector, options.detector);
  EXPECT_EQ(got.alpha, options.alpha);
  EXPECT_EQ(got.s, options.s);
  EXPECT_EQ(got.n, options.n);
  EXPECT_EQ(got.hybrid_threshold, options.hybrid_threshold);
  EXPECT_EQ(got.rho_accuracy, options.rho_accuracy);
  EXPECT_EQ(got.rho_value, options.rho_value);
  EXPECT_EQ(got.max_rounds, options.max_rounds);
  EXPECT_EQ(got.epsilon, options.epsilon);
  EXPECT_EQ(got.initial_accuracy, options.initial_accuracy);
  EXPECT_EQ(got.use_copy_detection, options.use_copy_detection);
  EXPECT_EQ(got.damping, options.damping);
  EXPECT_EQ(got.threads, options.threads);
  EXPECT_EQ(got.sample_rate, options.sample_rate);
  EXPECT_EQ(got.sample_method, options.sample_method);
  EXPECT_EQ(got.sample_min_items_per_source,
            options.sample_min_items_per_source);
  EXPECT_EQ(got.sample_seed, options.sample_seed);
  EXPECT_EQ(got.online_updates, options.online_updates);
  EXPECT_EQ(got.update_rebuild_fraction,
            options.update_rebuild_fraction);
}

// --- Mapped loading: LoadMode::kMapped serves the same state out of
// the mapped file, and Update copy-on-writes out of the mapping. ---

TEST(SessionSnapshotMapped, MappedLoadMatchesOwnedLoadEveryDetector) {
  World world = MotivatingExample();
  for (const std::string& name : ListDetectors()) {
    SCOPED_TRACE(name);
    const std::string path = TempPath("mapped_" + name + ".cdsnap");
    SessionOptions options;
    options.detector = name;
    options.online_updates = true;
    auto live = Session::Create(options);
    CD_CHECK_OK(live.status());
    CD_CHECK_OK(live->Run(world.data).status());
    CD_CHECK_OK(live->Save(path));

    auto owned = Session::Load(path, LoadMode::kOwned);
    CD_CHECK_OK(owned.status());
    auto mapped = Session::Load(path, LoadMode::kMapped);
    CD_CHECK_OK(mapped.status());
    std::remove(path.c_str());

    EXPECT_EQ(mapped->detector_name(), owned->detector_name());
    ExpectSameReport(mapped->report(), owned->report());
    EXPECT_EQ(mapped->report().copies().raw_map().raw_keys(),
              owned->report().copies().raw_map().raw_keys());
    ASSERT_NE(mapped->current_data(), nullptr);
    EXPECT_EQ(mapped->current_data()->num_observations(),
              world.data.num_observations());
  }
}

TEST(SessionSnapshotMapped, UpdateAfterMappedLoadCopiesOnWrite) {
  // The COW path: a mapped session taking updates must behave bit-
  // identically to an owned one — Apply may not write through the
  // read-only mapping (asan/ubsan in CI would catch a stray write,
  // and divergence here would catch a missed copy).
  World world = MotivatingExample();
  const std::string path = TempPath("mapped_cow.cdsnap");
  SessionOptions options;
  options.detector = "index";
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));

  auto owned = Session::Load(path, LoadMode::kOwned);
  CD_CHECK_OK(owned.status());
  auto mapped = Session::Load(path, LoadMode::kMapped);
  CD_CHECK_OK(mapped.status());
  std::remove(path.c_str());

  for (const DatasetDelta& delta :
       {ExampleDelta(world.data), FollowUpDelta(world.data)}) {
    CD_CHECK_OK(owned->Update(delta));
    CD_CHECK_OK(mapped->Update(delta));
    EXPECT_EQ(mapped->last_update_stats().incremental,
              owned->last_update_stats().incremental);
    ExpectSameReport(mapped->report(), owned->report());
  }
  // A save from the mapped session after COW round-trips cleanly.
  CD_CHECK_OK(mapped->Save(path));
  auto reloaded = Session::Load(path, LoadOptions());
  CD_CHECK_OK(reloaded.status());
  std::remove(path.c_str());
  ExpectSameReport(reloaded->report(), mapped->report());
}

TEST(SessionSnapshotMapped, StreamingAfterMappedLoadMatchesOwned) {
  World world = MotivatingExample();
  const std::string path = TempPath("mapped_stream.cdsnap");
  SessionOptions options;
  options.detector = "hybrid";
  options.threads = 4;
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto owned = Session::Load(path, LoadMode::kOwned);
  CD_CHECK_OK(owned.status());
  auto mapped = Session::Load(path, LoadMode::kMapped);
  CD_CHECK_OK(mapped.status());
  std::remove(path.c_str());

  CD_CHECK_OK(owned->Start(world.data));
  CD_CHECK_OK(mapped->Start(world.data));
  while (true) {
    auto owned_step = owned->Step();
    auto mapped_step = mapped->Step();
    CD_CHECK_OK(owned_step.status());
    CD_CHECK_OK(mapped_step.status());
    ASSERT_EQ(*mapped_step, *owned_step);
    if (!*owned_step) break;
  }
  ExpectSameReport(mapped->report(), owned->report());
}

// --- Failure modes. ---

TEST(SessionSnapshot, SaveBeforeAnyRunIsRefused) {
  SessionOptions options;
  options.online_updates = true;
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());
  Status status = session->Save(TempPath("never.cdsnap"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SessionSnapshot, SaveMidStreamingRunIsRefused) {
  World world = MotivatingExample();
  SessionOptions options;
  options.online_updates = true;
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());
  CD_CHECK_OK(session->Start(world.data));
  CD_CHECK_OK(session->Step().status());
  Status status = session->Save(TempPath("midrun.cdsnap"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("mid-run"), std::string::npos);
}

TEST(SessionSnapshot, SaveAfterPlainRunIsRefused) {
  // Without online_updates, Run() hands its state to the caller and
  // the session keeps nothing — Save must say so, not write an empty
  // file.
  World world = MotivatingExample();
  auto session = Session::Create(SessionOptions());
  CD_CHECK_OK(session.status());
  CD_CHECK_OK(session->Run(world.data).status());
  Status status = session->Save(TempPath("plain.cdsnap"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("online_updates"), std::string::npos);
}

TEST(SessionSnapshot, UnknownOptionFieldFromTheFutureIsRefused) {
  World world = MotivatingExample();
  const std::string path = TempPath("future_option.cdsnap");
  SessionOptions options;
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  // Inject a configuration field this library version has never
  // heard of — Load must refuse by name instead of dropping it.
  auto state = snapshot::Read(path);
  CD_CHECK_OK(state.status());
  state->options.push_back(
      snapshot::OptionField::Bool("quantum_mode", true));
  CD_CHECK_OK(snapshot::Write(path, *state));
  auto loaded = Session::Load(path, LoadOptions());
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("quantum_mode"),
            std::string::npos)
      << loaded.status().message();
}

TEST(SessionSnapshot, TamperedTapeIndexIsRefusedAtLoad) {
  World world = MotivatingExample();
  const std::string path = TempPath("tampered_index.cdsnap");
  SessionOptions options;
  options.detector = "index";
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto state = snapshot::Read(path);
  CD_CHECK_OK(state.status());
  ASSERT_TRUE(state->has_tape);
  bool tampered = false;
  for (snapshot::TapeRound& round : state->tape) {
    if (round.has_index && !round.index_entries.empty()) {
      round.index_entries[0].slot =
          static_cast<SlotId>(state->data.num_slots() + 1);
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "no taped index to tamper with";
  CD_CHECK_OK(snapshot::Write(path, *state));
  auto loaded = Session::Load(path, LoadOptions());
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos)
      << loaded.status().message();
}

TEST(SessionSnapshot, InvalidSavedOptionsFailValidationOnLoad) {
  World world = MotivatingExample();
  const std::string path = TempPath("bad_options.cdsnap");
  SessionOptions options;
  options.online_updates = true;
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());
  CD_CHECK_OK(live->Run(world.data).status());
  CD_CHECK_OK(live->Save(path));
  auto state = snapshot::Read(path);
  CD_CHECK_OK(state.status());
  for (snapshot::OptionField& field : state->options) {
    if (field.name == "alpha") field.real_value = 7.0;  // out of range
  }
  CD_CHECK_OK(snapshot::Write(path, *state));
  auto loaded = Session::Load(path, LoadOptions());
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("alpha"), std::string::npos)
      << loaded.status().message();
}

}  // namespace
}  // namespace copydetect
