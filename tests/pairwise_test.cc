#include "core/pairwise.h"

#include <gtest/gtest.h>

#include "core/bayes.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::ExampleFixture;
using testutil::PaperParams;

TEST(ComputePairScores, Example21CopyingPair) {
  // Ex. 2.1: for (S2, S3), C→ = C← = 3.89+1.6+3.86+3.83-1.6 = 11.58
  // and Pr(S2⊥S3|Φ) = .00004.
  ExampleFixture fx;
  Counters counters;
  PairScores scores =
      ComputePairScores(fx.Input(), 2, 3, PaperParams(), &counters);
  EXPECT_EQ(scores.shared_items, 5u);
  EXPECT_EQ(scores.shared_values, 4u);
  EXPECT_NEAR(scores.c_fwd, 11.58, 0.05);
  EXPECT_NEAR(scores.c_bwd, 11.58, 0.05);
  double p = NoCopyPosterior(scores.c_fwd, scores.c_bwd, PaperParams());
  EXPECT_NEAR(p, 0.00004, 0.00002);
}

TEST(ComputePairScores, Example21IndependentPair) {
  // (S0, S1): 4 shared true values, C ≈ .04, Pr(⊥) ≈ .79.
  ExampleFixture fx;
  Counters counters;
  PairScores scores =
      ComputePairScores(fx.Input(), 0, 1, PaperParams(), &counters);
  EXPECT_EQ(scores.shared_items, 4u);
  EXPECT_EQ(scores.shared_values, 4u);
  EXPECT_NEAR(scores.c_fwd, 0.04, 0.02);
  double p = NoCopyPosterior(scores.c_fwd, scores.c_bwd, PaperParams());
  EXPECT_NEAR(p, 0.79, 0.02);
}

TEST(ComputePairScores, CountsTwoEvalsPerSharedItem) {
  ExampleFixture fx;
  Counters counters;
  ComputePairScores(fx.Input(), 2, 3, PaperParams(), &counters);
  EXPECT_EQ(counters.score_evals, 10u);  // 5 shared items * 2
}

TEST(ComputePairScores, DisjointSourcesScoreZero) {
  // S0 covers {NJ, AZ, NY, TX}; S6 covers {AZ, NY, FL, TX}: 3 shared
  // items, all with different values -> 3 * ln(1-s).
  ExampleFixture fx;
  Counters counters;
  PairScores scores =
      ComputePairScores(fx.Input(), 0, 6, PaperParams(), &counters);
  EXPECT_EQ(scores.shared_items, 3u);
  EXPECT_EQ(scores.shared_values, 0u);
  EXPECT_NEAR(scores.c_fwd, 3.0 * PaperParams().different_penalty(),
              1e-9);
}

TEST(PairwiseDetector, MotivatingExampleVerdicts) {
  ExampleFixture fx;
  PairwiseDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());

  // The copier cliques S2-S4 and S6-S8 are detected.
  EXPECT_TRUE(result.IsCopying(2, 3));
  EXPECT_TRUE(result.IsCopying(2, 4));
  EXPECT_TRUE(result.IsCopying(3, 4));
  EXPECT_TRUE(result.IsCopying(6, 7));
  EXPECT_TRUE(result.IsCopying(6, 8));
  EXPECT_TRUE(result.IsCopying(7, 8));
  // Honest pairs are not.
  EXPECT_FALSE(result.IsCopying(0, 1));
  EXPECT_FALSE(result.IsCopying(0, 9));
  EXPECT_FALSE(result.IsCopying(1, 5));
}

TEST(PairwiseDetector, ExaminesEveryPairAndItem) {
  // §II-B / Ex. 3.6: PAIRWISE examines 45 pairs and "183" shared items.
  // Exact enumeration of Table I gives 181 shared items
  // (sum over items of C(#providers, 2) = 36+28+36+36+45); the paper's
  // 183 appears to be a small arithmetic slip, so we assert the exact
  // count and the 2-evaluations-per-item accounting.
  ExampleFixture fx;
  PairwiseDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  EXPECT_EQ(detector.counters().pairs_tracked, 45u);
  EXPECT_EQ(detector.counters().score_evals, 362u);
}

TEST(PairwiseDetector, PosteriorsAreSymmetricInPairOrder) {
  ExampleFixture fx;
  PairwiseDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  PairPosterior p23 = result.Get(2, 3);
  PairPosterior p32 = result.Get(3, 2);
  EXPECT_EQ(p23.p_indep, p32.p_indep);
  EXPECT_EQ(p23.p_first_copies, p32.p_first_copies);
}

TEST(PairwiseDetector, DirectionProbabilitiesSumWithIndep) {
  ExampleFixture fx;
  PairwiseDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  result.ForEach([](SourceId a, SourceId b, const PairPosterior& p) {
    (void)a;
    (void)b;
    EXPECT_NEAR(p.p_indep + p.p_first_copies + p.p_second_copies, 1.0,
                1e-9);
  });
}

}  // namespace
}  // namespace copydetect
