// DatasetDelta + Dataset::Apply: the applied snapshot must be
// bit-identical to rebuilding the merged observations from scratch
// (any feed order — the canonical slot layout makes the rebuild
// order-insensitive), and the DeltaSummary must name exactly what
// changed.
#include "model/dataset_delta.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace copydetect {
namespace {

struct Row {
  std::string source;
  std::string item;
  std::string value;
};

std::vector<Row> RowsOf(const Dataset& d) {
  std::vector<Row> rows;
  for (SourceId s = 0; s < d.num_sources(); ++s) {
    std::span<const ItemId> items = d.items_of(s);
    std::span<const SlotId> slots = d.slots_of(s);
    for (size_t i = 0; i < items.size(); ++i) {
      rows.push_back({std::string(d.source_name(s)),
                      std::string(d.item_name(items[i])),
                      std::string(d.slot_value(slots[i]))});
    }
  }
  return rows;
}

/// Rebuilds `d` from scratch: source/item names registered in id
/// order (aligning the id spaces is what makes a bitwise comparison
/// meaningful), observations fed in an arbitrary shuffled order — the
/// canonical layout must absorb it.
Dataset Rebuild(const Dataset& d, uint64_t shuffle_seed) {
  DatasetBuilder builder;
  for (SourceId s = 0; s < d.num_sources(); ++s) {
    builder.AddSource(d.source_name(s));
  }
  for (ItemId i = 0; i < d.num_items(); ++i) {
    builder.AddItem(d.item_name(i));
  }
  std::vector<Row> rows = RowsOf(d);
  if (shuffle_seed != 0) {
    Rng rng(shuffle_seed);
    rng.Shuffle(&rows);
  }
  for (const Row& row : rows) builder.Add(row.source, row.item, row.value);
  auto built = builder.Build();
  CD_CHECK_OK(built.status());
  return std::move(built).value();
}

/// Bitwise structural equality through the public accessors: names,
/// slot layout, provider lists, per-source rows.
void ExpectSameDataset(const Dataset& got, const Dataset& want) {
  ASSERT_EQ(got.num_sources(), want.num_sources());
  ASSERT_EQ(got.num_items(), want.num_items());
  ASSERT_EQ(got.num_slots(), want.num_slots());
  ASSERT_EQ(got.num_observations(), want.num_observations());
  for (SourceId s = 0; s < want.num_sources(); ++s) {
    EXPECT_EQ(got.source_name(s), want.source_name(s)) << "source " << s;
  }
  for (ItemId d = 0; d < want.num_items(); ++d) {
    EXPECT_EQ(got.item_name(d), want.item_name(d)) << "item " << d;
    ASSERT_EQ(got.slot_begin(d), want.slot_begin(d)) << "item " << d;
    ASSERT_EQ(got.slot_end(d), want.slot_end(d)) << "item " << d;
  }
  for (SlotId v = 0; v < want.num_slots(); ++v) {
    EXPECT_EQ(got.slot_value(v), want.slot_value(v)) << "slot " << v;
    EXPECT_EQ(got.slot_item(v), want.slot_item(v)) << "slot " << v;
    std::span<const SourceId> gp = got.providers(v);
    std::span<const SourceId> wp = want.providers(v);
    ASSERT_EQ(gp.size(), wp.size()) << "slot " << v;
    for (size_t i = 0; i < wp.size(); ++i) {
      EXPECT_EQ(gp[i], wp[i]) << "slot " << v << " provider " << i;
    }
  }
  for (SourceId s = 0; s < want.num_sources(); ++s) {
    std::span<const ItemId> gi = got.items_of(s);
    std::span<const ItemId> wi = want.items_of(s);
    ASSERT_EQ(gi.size(), wi.size()) << "source " << s;
    for (size_t i = 0; i < wi.size(); ++i) {
      EXPECT_EQ(gi[i], wi[i]) << "source " << s << " obs " << i;
      EXPECT_EQ(got.slots_of(s)[i], want.slots_of(s)[i])
          << "source " << s << " obs " << i;
    }
  }
}

AppliedDelta Apply(const Dataset& base, const DatasetDelta& delta) {
  auto applied = base.Apply(delta);
  CD_CHECK_OK(applied.status());
  return std::move(applied).value();
}

/// The standard mixed delta against the motivating example: an
/// overwrite, an add into an empty cell, a retraction, a brand-new
/// source, and a brand-new item.
DatasetDelta MixedDelta(const Dataset& base) {
  DatasetDelta delta;
  // Overwrite: S0's NJ value flips to the value S3 provides.
  delta.Set(base.source_name(0), base.item_name(0), "Mahwah");
  // Add: S0 had no value for item 3 (FL).
  delta.Set(base.source_name(0), base.item_name(3), "Tallahassee");
  // Retract: S9 withdraws its TX observation (item 4).
  delta.Retract(base.source_name(9), base.item_name(4));
  // New source covering an existing item (AZ).
  delta.Set("S-new", base.item_name(1), "Tucson");
  // New item from an existing source.
  delta.Set(base.source_name(2), "CO", "Denver");
  return delta;
}

TEST(DatasetBuilder, CanonicalLayoutIsFeedOrderInsensitive) {
  testutil::World world = testutil::SmallWorld(17);
  for (uint64_t seed : {1u, 2u, 3u}) {
    ExpectSameDataset(Rebuild(world.data, seed),
                      Rebuild(world.data, 0));
  }
}

TEST(DatasetBuilder, CatchesConflictSeparatedByAnotherProvider) {
  // Regression: with conflict detection running over the layout order
  // (item, value, source), S2's same-value observation sat between
  // S1's two conflicting ones and hid the conflict.
  DatasetBuilder builder;
  builder.Add("S1", "NJ", "Trenton");
  builder.Add("S2", "NJ", "Trenton");
  builder.Add("S1", "NJ", "Atlantic");
  auto data = builder.Build();
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(data.status().message().find("two values"),
            std::string::npos);
}

TEST(DatasetDelta, ValidateRejectsTwoOpsPerCell) {
  DatasetDelta delta;
  delta.Set("S1", "NJ", "Trenton");
  delta.Retract("S1", "NJ");
  Status status = delta.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("two ops"), std::string::npos);
}

TEST(DatasetApply, MatchesFromScratchRebuildOnMotivatingExample) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  AppliedDelta applied = Apply(base, MixedDelta(base));
  for (uint64_t seed : {0u, 5u, 6u}) {
    ExpectSameDataset(applied.data, Rebuild(applied.data, seed));
  }
}

TEST(DatasetApply, MatchesRebuildOnGeneratedWorldWithRandomDelta) {
  testutil::World world = testutil::SmallWorld(29);
  const Dataset& base = world.data;
  Rng rng(99);
  DatasetDelta delta;
  // Random overwrites/retractions over existing observations plus a
  // few new cells; one op per cell (tracked via a set of cells).
  std::set<std::pair<SourceId, ItemId>> used;
  for (int k = 0; k < 60; ++k) {
    SourceId s = static_cast<SourceId>(rng.NextBelow(base.num_sources()));
    if (base.coverage(s) == 0) continue;
    std::span<const ItemId> items = base.items_of(s);
    ItemId d = items[rng.NextBelow(items.size())];
    if (!used.insert({s, d}).second) continue;
    switch (rng.NextBelow(3)) {
      case 0:
        delta.Retract(base.source_name(s), base.item_name(d));
        break;
      case 1:
        delta.Set(base.source_name(s), base.item_name(d), "fresh-value");
        break;
      default:
        // Re-assert the current value (a no-op write, still an op).
        delta.Set(base.source_name(s), base.item_name(d),
                  base.slot_value(base.slot_of(s, d)));
        break;
    }
  }
  delta.Set("delta-source", base.item_name(0), "delta-value");
  AppliedDelta applied = Apply(base, delta);
  ExpectSameDataset(applied.data, Rebuild(applied.data, 123));
}

TEST(DatasetApply, ChainedApplicationsMatchRebuild) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  AppliedDelta first = Apply(base, MixedDelta(base));
  DatasetDelta second;
  second.Set("S-new", base.item_name(2), "Salem");
  second.Retract(base.source_name(2), "CO");  // added by the first delta
  second.Set(base.source_name(4), base.item_name(0), "Trenton");
  AppliedDelta chained = Apply(first.data, second);
  ExpectSameDataset(chained.data, Rebuild(chained.data, 7));
}

TEST(DatasetApply, SummaryNamesExactlyWhatChanged) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  AppliedDelta applied = Apply(base, MixedDelta(base));
  const DeltaSummary& sum = applied.summary;

  // S0, S2, S9 and the new source (id 10) are touched.
  EXPECT_EQ(sum.touched_sources,
            (std::vector<SourceId>{0, 2, 9, 10}));
  // Items 0 (overwrite), 1 (new source), 3 (add), 4 (retract) and the
  // new item 5.
  EXPECT_EQ(sum.touched_items, (std::vector<ItemId>{0, 1, 3, 4, 5}));
  EXPECT_EQ(sum.added_sources, 1u);
  EXPECT_EQ(sum.added_items, 1u);
  EXPECT_EQ(sum.added, 3u);       // S0/FL, S-new/AZ, S2/CO
  EXPECT_EQ(sum.overwritten, 1u); // S0/NJ
  EXPECT_EQ(sum.retracted, 1u);   // S9/TX
  EXPECT_TRUE(sum.SourceTouched(9));
  EXPECT_FALSE(sum.SourceTouched(1));
  EXPECT_TRUE(sum.ItemTouched(3));
  EXPECT_FALSE(sum.ItemTouched(2));

  // Untouched items' slots all map, strictly increasing, to slots
  // holding the same value.
  ASSERT_EQ(sum.old_to_new_slot.size(), base.num_slots());
  SlotId last_mapped = 0;
  bool first_mapped = true;
  for (SlotId ov = 0; ov < base.num_slots(); ++ov) {
    SlotId nv = sum.old_to_new_slot[ov];
    if (nv == kInvalidSlot) {
      // Only slots of touched items may die.
      EXPECT_TRUE(sum.ItemTouched(base.slot_item(ov)));
      continue;
    }
    EXPECT_EQ(applied.data.slot_value(nv), base.slot_value(ov));
    if (!first_mapped) {
      EXPECT_GT(nv, last_mapped);
    }
    last_mapped = nv;
    first_mapped = false;
  }
}

TEST(DatasetApply, FreshGenerationAndBaseUntouched) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  size_t base_obs = base.num_observations();
  AppliedDelta applied = Apply(base, MixedDelta(base));
  EXPECT_NE(applied.data.generation(), base.generation());
  EXPECT_EQ(base.num_observations(), base_obs);
  EXPECT_EQ(base.num_sources(), 10u);
}

TEST(DatasetApply, EmptyDeltaYieldsIdenticalSnapshot) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  AppliedDelta applied = Apply(base, DatasetDelta());
  ExpectSameDataset(applied.data, base);
  EXPECT_NE(applied.data.generation(), base.generation());
  EXPECT_TRUE(applied.summary.touched_sources.empty());
  EXPECT_TRUE(applied.summary.touched_items.empty());
}

TEST(DatasetApply, RetractionCanEmptyASourceAndAnItem) {
  DatasetBuilder builder;
  builder.Add("A", "x", "1");
  builder.Add("A", "y", "2");
  builder.Add("B", "y", "2");
  auto base = builder.Build();
  CD_CHECK_OK(base.status());
  DatasetDelta delta;
  delta.Retract("A", "x");
  delta.Retract("A", "y");
  AppliedDelta applied = Apply(*base, delta);
  EXPECT_EQ(applied.data.num_sources(), 2u);  // names never disappear
  EXPECT_EQ(applied.data.num_items(), 2u);
  EXPECT_EQ(applied.data.coverage(0), 0u);
  EXPECT_EQ(applied.data.num_values(0), 0u);  // item x has no slots
  ExpectSameDataset(applied.data, Rebuild(applied.data, 3));
}

TEST(DatasetApply, RejectsBadDeltas) {
  testutil::ExampleFixture fx;
  const Dataset& base = fx.world.data;
  {
    DatasetDelta delta;
    delta.Retract("no-such-source", base.item_name(0));
    EXPECT_EQ(base.Apply(delta).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    DatasetDelta delta;
    delta.Retract(base.source_name(0), "no-such-item");
    EXPECT_EQ(base.Apply(delta).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // S0 provides nothing for FL (item 3): retracting an empty cell
    // is an error.
    DatasetDelta delta;
    delta.Retract(base.source_name(0), base.item_name(3));
    EXPECT_EQ(base.Apply(delta).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    DatasetDelta delta;
    delta.Set(base.source_name(0), base.item_name(0), "a");
    delta.Set(base.source_name(0), base.item_name(0), "b");
    EXPECT_EQ(base.Apply(delta).status().code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace copydetect
