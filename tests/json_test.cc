#include "common/json.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

// --- Construction + Dump ---

TEST(Json, ScalarDumps) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int64(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Uint64(0).Dump(), "0");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(Json, Uint64AboveDoubleRangeIsLossless) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  JsonValue v = JsonValue::Uint64(big);
  EXPECT_EQ(v.Dump(), "18446744073709551615");
  uint64_t out = 0;
  EXPECT_TRUE(v.AsUint64(&out));
  EXPECT_EQ(out, big);
}

TEST(Json, DoubleRendersShortestRoundTrip) {
  EXPECT_EQ(JsonValue::Double(0.1).Dump(), "0.1");
  EXPECT_EQ(JsonValue::Double(1.0).Dump(), "1");
  EXPECT_EQ(JsonValue::Double(-2.5).Dump(), "-2.5");
  // The rendered literal must parse back to the exact same double.
  const double tricky = 0.1 + 0.2;
  double round = 0.0;
  ASSERT_TRUE(JsonValue::Double(tricky).AsDouble(&round));
  EXPECT_EQ(round, tricky);
}

TEST(Json, NonFiniteDoubleRendersNull) {
  EXPECT_EQ(JsonValue::Double(std::numeric_limits<double>::infinity())
                .Dump(),
            "null");
  EXPECT_EQ(
      JsonValue::Double(std::numeric_limits<double>::quiet_NaN()).Dump(),
      "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c\n").Dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(JsonValue::Str(std::string("\x01", 1)).Dump(),
            "\"\\u0001\"");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(JsonValue::Str("café").Dump(), "\"café\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndSetOverwritesInPlace) {
  JsonValue obj = JsonValue::Object()
                      .Set("b", JsonValue::Uint64(1))
                      .Set("a", JsonValue::Uint64(2));
  EXPECT_EQ(obj.Dump(), "{\"b\":1,\"a\":2}");
  obj.Set("b", JsonValue::Str("x"));  // overwrite keeps position
  EXPECT_EQ(obj.Dump(), "{\"b\":\"x\",\"a\":2}");
}

TEST(Json, ArrayAndNestedDump) {
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Uint64(1));
  arr.Append(JsonValue::Object().Set("k", JsonValue::Null()));
  EXPECT_EQ(arr.Dump(), "[1,{\"k\":null}]");
}

TEST(Json, RawSplicesVerbatim) {
  JsonValue obj = JsonValue::Object().Set(
      "report", JsonValue::Raw("{\"x\":1.50}"));
  EXPECT_EQ(obj.Dump(), "{\"report\":{\"x\":1.50}}");
}

// --- Typed lookups ---

TEST(Json, TypedGetters) {
  JsonValue obj = JsonValue::Object()
                      .Set("s", JsonValue::Str("v"))
                      .Set("d", JsonValue::Double(1.5))
                      .Set("u", JsonValue::Uint64(9))
                      .Set("b", JsonValue::Bool(true));
  EXPECT_EQ(obj.GetString("s"), "v");
  EXPECT_EQ(obj.GetDouble("d", 0.0), 1.5);
  EXPECT_EQ(obj.GetUint64("u", 0), 9u);
  EXPECT_TRUE(obj.GetBool("b", false));
  // Absent or wrong kind falls back to the default.
  EXPECT_EQ(obj.GetString("missing", "def"), "def");
  EXPECT_EQ(obj.GetUint64("s", 3), 3u);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

// --- Parse ---

TEST(Json, ParseScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_EQ(ParseJson("\"a\\u0041\"")->text(), "aA");
  uint64_t u = 0;
  EXPECT_TRUE(ParseJson(" 42 ")->AsUint64(&u));
  EXPECT_EQ(u, 42u);
}

TEST(Json, ParseSurrogatePair) {
  auto v = ParseJson("\"\\ud83d\\ude00\"");  // 😀
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->text(), "\xF0\x9F\x98\x80");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("01").ok());          // leading zero
  EXPECT_FALSE(ParseJson("1 2").ok());         // trailing garbage
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("\"\\x41\"").ok());   // bad escape
  EXPECT_FALSE(ParseJson("nulL").ok());
}

TEST(Json, ParseErrorNamesByteOffset) {
  auto v = ParseJson("[1,@]");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("byte 3"), std::string::npos)
      << v.status().ToString();
}

TEST(Json, ParseBoundsNestingDepth) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

// --- The byte-stability contract the serving recovery smoke rests on:
// Parse(Dump(x)) dumps back to the exact same bytes, including number
// literals that a double round trip would rewrite. ---

TEST(Json, ParseDumpRoundTripIsByteIdentical) {
  const std::string canonical =
      "{\"detector\":\"hybrid\",\"accuracy\":0.8714285714285714,"
      "\"n\":50,\"big\":18446744073709551615,\"exp\":1e-9,"
      "\"trailing\":1.50,\"list\":[null,true,\"\\u0001é\"]}";
  auto parsed = ParseJson(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), canonical);
  // And a second generation stays fixed.
  EXPECT_EQ(ParseJson(parsed->Dump())->Dump(), canonical);
}

}  // namespace
}  // namespace copydetect
