#include "serve/wire.h"

#include <string>

#include <gtest/gtest.h>

namespace copydetect {
namespace serve {
namespace {

TEST(Wire, ParseRequestPullsVerbAndSession) {
  auto request =
      ParseRequest("{\"verb\":\"query\",\"session\":\"books\"}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->verb, "query");
  EXPECT_EQ(request->session, "books");
  EXPECT_TRUE(request->body.is_object());
}

TEST(Wire, ParseRequestSessionOptional) {
  auto request = ParseRequest("{\"verb\":\"stats\"}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->session, "");
}

TEST(Wire, ParseRequestFailsClosed) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());              // not an object
  EXPECT_FALSE(ParseRequest("{\"session\":\"x\"}").ok());  // no verb
  EXPECT_FALSE(ParseRequest("{\"verb\":7}").ok());       // wrong kind
  EXPECT_FALSE(ParseRequest("{\"verb\":\"\"}").ok());    // empty verb
}

TEST(Wire, ParseRequestSurvivesHostileBytes) {
  // A line off the socket can be anything: truncated JSON, raw binary,
  // NULs. ParseRequest must return a status — never crash or accept.
  const std::string hostile[] = {
      "{\"verb\":\"query\",\"session\":\"bo",   // truncated mid-string
      "{\"verb\":\"query\"",                    // truncated mid-object
      std::string("\x00\x01\xfe\xff", 4),       // raw binary with NUL
      "\xc3\x28 not utf8 {",                    // invalid UTF-8 lead-in
      "{\"verb\":\"query\"}}",                  // trailing garbage
      "{\"verb\": \"query\", }",                // trailing comma
  };
  for (const std::string& line : hostile) {
    auto request = ParseRequest(line);
    ASSERT_FALSE(request.ok()) << line;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
        << line;
    EXPECT_FALSE(request.status().message().empty()) << line;
  }
}

TEST(Wire, ErrorResponseIsAlwaysOneWellFormedJsonLine) {
  // Whatever hostile bytes end up quoted into a status message, the
  // envelope must stay a single parseable ndjson line — a raw newline
  // or unescaped quote would desynchronise the framing.
  const Status awkward[] = {
      Status::InvalidArgument("quote \" backslash \\ done"),
      Status::InvalidArgument("line\nbreak\tand\rreturns"),
      Status::InvalidArgument(std::string("nul \x00 inside", 12)),
      Status::NotFound("unicode caf\xc3\xa9"),
      Status::IOError(""),
  };
  for (const Status& status : awkward) {
    const std::string response = ErrorResponse(status);
    EXPECT_EQ(response.find('\n'), std::string::npos)
        << status.ToString();
    auto parsed = ParseJson(response);
    ASSERT_TRUE(parsed.ok()) << response;
    EXPECT_FALSE(parsed->GetBool("ok", true));
    const JsonValue* error = parsed->Find("error");
    ASSERT_NE(error, nullptr) << response;
    EXPECT_FALSE(error->GetString("code").empty()) << response;
  }
}

TEST(Wire, OkResponseLeadsWithOk) {
  const std::string response = OkResponse(
      JsonValue::Object().Set("version", JsonValue::Uint64(3)));
  EXPECT_EQ(response, "{\"ok\":true,\"version\":3}");
}

TEST(Wire, ErrorResponseCarriesCodeAndMessage) {
  const std::string response =
      ErrorResponse(Status::NotFound("no session \"x\""));
  auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetString("code"), "NotFound");
  EXPECT_NE(error->GetString("message").find("no session"),
            std::string::npos);
}

TEST(Wire, DeltaFromJsonDecodesSetsAndRetracts) {
  auto body = ParseJson(
      "{\"verb\":\"update\",\"set\":[[\"s1\",\"i1\",\"7\"],"
      "[\"s2\",\"i2\",\"8\"]],\"retract\":[[\"s3\",\"i3\"]]}");
  ASSERT_TRUE(body.ok());
  auto delta = DeltaFromJson(*body);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->ops().size(), 3u);
  EXPECT_FALSE(delta->empty());
}

TEST(Wire, DeltaFromJsonRejectsMalformedTuples) {
  for (const char* bad : {
           "{\"set\":[[\"s\",\"i\"]]}",            // 2 fields, needs 3
           "{\"retract\":[[\"s\",\"i\",\"v\"]]}",  // 3 fields, needs 2
           "{\"set\":[[\"s\",\"i\",7]]}",          // non-string value
           "{\"set\":\"nope\"}",                   // not an array
           "{}",                                   // empty delta
       }) {
    auto body = ParseJson(bad);
    ASSERT_TRUE(body.ok()) << bad;
    EXPECT_FALSE(DeltaFromJson(*body).ok()) << bad;
  }
}

TEST(Wire, SessionOptionsFromJsonAppliesKnobs) {
  auto spec = ParseJson(
      "{\"detector\":\"index\",\"threads\":2,\"alpha\":0.2,"
      "\"n\":25,\"max_rounds\":5}");
  ASSERT_TRUE(spec.ok());
  auto options = SessionOptionsFromJson(*spec);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->detector, "index");
  EXPECT_EQ(options->threads, 2u);
  EXPECT_EQ(options->alpha, 0.2);
  EXPECT_EQ(options->n, 25.0);
  EXPECT_EQ(options->max_rounds, 5);
}

TEST(Wire, SessionOptionsFromJsonFailsClosedOnUnknownKeys) {
  auto spec = ParseJson("{\"detecter\":\"index\"}");  // typo
  ASSERT_TRUE(spec.ok());
  auto options = SessionOptionsFromJson(*spec);
  ASSERT_FALSE(options.ok());
  EXPECT_NE(options.status().message().find("detecter"),
            std::string::npos);
}

TEST(Wire, SessionOptionsFromJsonRefusesOnlineUpdates) {
  auto spec = ParseJson("{\"online_updates\":true}");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(SessionOptionsFromJson(*spec).ok());
}

TEST(Wire, WorldFromJsonGeneratesNamedProfile) {
  auto spec = ParseJson("{\"generate\":\"example\"}");
  ASSERT_TRUE(spec.ok());
  auto world = WorldFromJson(*spec);
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  EXPECT_GT(world->data.num_sources(), 0u);
  EXPECT_GT(world->suggested_n, 0.0);
}

TEST(Wire, WorldFromJsonRejectsMissingOrUnknownProfile) {
  auto no_generate = ParseJson("{\"scale\":0.5}");
  ASSERT_TRUE(no_generate.ok());
  EXPECT_FALSE(WorldFromJson(*no_generate).ok());
  auto unknown = ParseJson("{\"generate\":\"no-such-profile\"}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(WorldFromJson(*unknown).ok());
}

}  // namespace
}  // namespace serve
}  // namespace copydetect
