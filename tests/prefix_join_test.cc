#include "simjoin/prefix_join.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace copydetect {
namespace {

void ExpectSameJoin(const std::vector<OverlapPair>& a,
                    const std::vector<OverlapPair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a) << i;
    EXPECT_EQ(a[i].b, b[i].b) << i;
    EXPECT_EQ(a[i].overlap, b[i].overlap) << i;
  }
}

TEST(PrefixFilterJoin, MotivatingExampleThreshold5) {
  testutil::ExampleFixture fx;
  // Only full-coverage pairs share all 5 items.
  std::vector<OverlapPair> pairs = PrefixFilterJoin(fx.world.data, 5);
  std::vector<OverlapPair> brute = BruteForceJoin(fx.world.data, 5);
  ExpectSameJoin(pairs, brute);
  EXPECT_FALSE(pairs.empty());
  for (const OverlapPair& p : pairs) EXPECT_EQ(p.overlap, 5u);
}

struct JoinCase {
  uint64_t seed;
  uint32_t min_overlap;
};

class PrefixJoinTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(PrefixJoinTest, MatchesBruteForce) {
  JoinCase param = GetParam();
  testutil::World world = testutil::SmallWorld(param.seed, 30, 200);
  std::vector<OverlapPair> fast =
      PrefixFilterJoin(world.data, param.min_overlap);
  std::vector<OverlapPair> brute =
      BruteForceJoin(world.data, param.min_overlap);
  ExpectSameJoin(fast, brute);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, PrefixJoinTest,
    ::testing::Values(JoinCase{101, 1}, JoinCase{101, 2},
                      JoinCase{101, 8}, JoinCase{102, 1},
                      JoinCase{102, 16}, JoinCase{103, 4},
                      JoinCase{103, 32}, JoinCase{104, 64}));

TEST(PrefixFilterJoin, HighThresholdYieldsNothingOnSparseData) {
  testutil::World world = testutil::SmallWorld(105, 20, 50);
  std::vector<OverlapPair> pairs = PrefixFilterJoin(world.data, 51);
  EXPECT_TRUE(pairs.empty());
}

}  // namespace
}  // namespace copydetect
