// Fixture: bench reaching past the facade — expect layering at line 4;
// line 3 (the facade) and line 5 (common utilities) are legal.
#include "copydetect/session.h"
#include "core/bayes.h"
#include "common/random.h"

int FixtureBench() { return 0; }
