// Fixture: nondeterministic randomness — expect banned-rng at lines
// 6, 7 and 8.
#include <cstdlib>
#include <random>

int FixtureSeed() { return rand(); }
std::random_device g_entropy;
long FixtureClockSeed() { return static_cast<long>(time(nullptr)); }
