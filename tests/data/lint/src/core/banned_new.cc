// Fixture: raw ownership — expect banned-new-delete at lines 5 and 6.
struct Blob { int x; };

int FixtureOwn() {
  Blob* b = new Blob();
  delete b;
  return 0;
}

// Deleted functions must not trip the rule:
struct NoCopy { NoCopy(const NoCopy&) = delete; };
