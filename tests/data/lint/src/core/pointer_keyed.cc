// Fixture: pointer-keyed container — expect pointer-keyed at line 6.
#include <map>

struct Source;

std::map<Source*, int> g_weights;
