// Fixture: bucket-order iteration in a result-bearing module —
// expect unordered-iteration at lines 8 and 10.
#include <unordered_map>

int FixtureUnordered() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  for (const auto& [k, v] : counts) (void)k;
  int total = 0;
  for (auto it = counts.begin(); it != counts.end(); ++it) total += it->second;
  return total;
}
