// Fixture: unordered floating-point accumulation — expect
// nonfixed-reduction at lines 7 and 10.
#include <atomic>
#include <numeric>
#include <vector>

std::atomic<double> g_sum{0.0};

double FixtureReduce(const std::vector<double>& v) {
  return std::reduce(v.begin(), v.end());
}
