// Fixture: core must not include eval — expect layering at line 3.
#include "common/status.h"
#include "eval/metrics.h"

int FixtureLayering() { return 0; }
