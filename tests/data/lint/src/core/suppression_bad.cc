// Fixture: suppression audit — expect suppression findings at lines
// 5 (no reason), 7 (unknown rule) and 9 (suppresses nothing).
struct Grid { int x; };

Grid* FixtureNoReason() { return new Grid(); }  // cd-lint: allow(banned-new-delete)

int FixtureUnknown() { return 0; }  // cd-lint: allow(no-such-rule) typo'd rule id

// cd-lint: allow(banned-rng) nothing on the next line uses an RNG
int FixtureUnused() { return 4; }
