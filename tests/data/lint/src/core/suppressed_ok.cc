// Fixture: a justified suppression silences the rule and is itself
// clean — expect zero findings from this file.
struct Pool { int x; };

Pool* FixtureLeak() {
  // cd-lint: allow(banned-new-delete) fixture: justified exemption covering the line below
  return new Pool();
}
