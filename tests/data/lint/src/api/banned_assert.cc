// Fixture: abort in the facade layer — expect banned-assert at line 5.
#include <cassert>

void FixtureValidate(int n) {
  assert(n > 0);
}
