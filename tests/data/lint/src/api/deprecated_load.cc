// Fixture: the single-argument Load forwarder coming back.
#include <string>

struct Fixture {
  static Fixture Load(const std::string& path);
  static Fixture Load(const std::string& path, int options);
};
