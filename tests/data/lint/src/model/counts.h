// Fixture header: declares the container counts.cc iterates.
#ifndef FIXTURE_MODEL_COUNTS_H_
#define FIXTURE_MODEL_COUNTS_H_

#include <unordered_map>

struct Counts {
  std::unordered_map<int, int> by_source;
};

#endif  // FIXTURE_MODEL_COUNTS_H_
