// Fixture: the container is declared in the header; LintTree's
// cross-header harvest must still flag the iteration at line 7.
#include "model/counts.h"

int FixtureTally(const Counts& c) {
  int n = 0;
  for (const auto& [s, v] : c.by_source) n += v;
  return n;
}
