// Fixture: the retired forwarding include coming back to its old home.
#ifndef FIXTURE_STRINGUTIL_H_
#define FIXTURE_STRINGUTIL_H_
#include "common/flags.h"
#endif
