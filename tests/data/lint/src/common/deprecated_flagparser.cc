// Fixture: the retired parse-first flag API coming back.
#include "common/flags.h"

void Fixture(int argc, char** argv) {
  FlagParser parser(argc, argv);
}
