// Fixture: serve reaches the engine only through the facade (plus
// snapshot/common) — expect layering at line 5.
#include "common/status.h"
#include "copydetect/session_manager.h"
#include "fusion/fusion.h"

int FixtureServeLayering() { return 0; }
