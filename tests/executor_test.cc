#include "common/executor.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(Executor, SerialModeRunsInlineOnCaller) {
  Executor executor(1);
  EXPECT_TRUE(executor.serial());
  EXPECT_EQ(executor.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  size_t runs = 0;  // non-atomic on purpose: serial mode is inline
  executor.ParallelFor(100, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++runs;
  });
  EXPECT_EQ(runs, 100u);
}

TEST(Executor, ZeroThreadsPicksHardwareConcurrency) {
  Executor executor(0);
  EXPECT_GE(executor.num_threads(), 1u);
}

TEST(Executor, ParallelForCoversEveryIndexOnce) {
  Executor executor(4);
  EXPECT_FALSE(executor.serial());
  std::vector<std::atomic<int>> hits(1000);
  executor.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, EmptyRangeIsNoop) {
  Executor executor(3);
  executor.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(Executor, MoreThreadsThanWork) {
  Executor executor(16);
  std::vector<std::atomic<int>> hits(3);
  executor.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, NestedParallelForCompletes) {
  // Nested submission runs inline on the worker (ThreadPool-level
  // safety); the outer call still parallelizes.
  Executor executor(2);
  std::atomic<int> total{0};
  executor.ParallelFor(8, [&](size_t) {
    executor.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Executor, NullHandleHelperRunsInline) {
  size_t runs = 0;
  ParallelFor(nullptr, 10, [&](size_t) { ++runs; });
  EXPECT_EQ(runs, 10u);
}

TEST(Executor, ReusableAcrossManyRounds) {
  // The whole point of the shared runtime: one pool, many rounds.
  Executor executor(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    executor.ParallelFor(64, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

TEST(Executor, ShutdownDrainsThenDegradesToInline) {
  // Regression: Shutdown must reject no submitted work — everything
  // in flight finishes, and later ParallelFor calls still cover every
  // index (inline on the caller instead of on the dead pool).
  Executor executor(4);
  std::atomic<int> total{0};
  executor.ParallelFor(256, [&](size_t) { total.fetch_add(1); });
  executor.Shutdown();
  EXPECT_EQ(total.load(), 256);
  std::thread::id caller = std::this_thread::get_id();
  executor.ParallelFor(32, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 256 + 32);
}

TEST(Executor, ShutdownInSerialModeIsNoop) {
  Executor executor(1);
  executor.Shutdown();
  size_t runs = 0;
  executor.ParallelFor(5, [&](size_t) { ++runs; });
  EXPECT_EQ(runs, 5u);
}

TEST(Executor, ShutdownIsIdempotent) {
  Executor executor(2);
  executor.Shutdown();
  executor.Shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace copydetect
