#include "common/random.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(10, 14);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 14);
    seen[v - 10] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BetaInUnitIntervalWithRightMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Beta(2.0, 5.0);
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0 / 7.0, 0.01);
}

TEST(Rng, ZipfSkewsLow) {
  Rng rng(23);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(n, 1.0);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 should dominate rank 50 heavily under theta = 1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, ZipfThetaZeroIsUniformish) {
  Rng rng(29);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(n, 0.0)];
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i] / 20000.0, 0.1, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(31);
  std::vector<uint64_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
  // k == n returns everything.
  std::vector<uint64_t> all = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(all.size(), 10u);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(43);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

}  // namespace
}  // namespace copydetect
