// Shard-plan partitioning, the in-process N-shard harness, and the
// multi-process BSP protocol through the Session facade. The central
// claim under test is the PR's contract: a sharded run — in-process
// or split across coordinator/shard round trips — reproduces the
// single-process run bit for bit, for every registered detector.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "copydetect/session.h"
#include "core/detector_registry.h"
#include "core/shard_merge.h"
#include "core/sharded_detector.h"
#include "fusion/truth_finder.h"
#include "model/shard_plan.h"
#include "snapshot/snapshot_io.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::PaperParams;
using testutil::SmallWorld;

// ---------------------------------------------------------------------
// ShardPlan: the ownership partition itself.

TEST(ShardPlan, EveryKeyOwnedByExactlyOneShard) {
  for (uint32_t num_shards : {1u, 2u, 4u, 7u}) {
    for (SourceId a = 0; a < 40; ++a) {
      for (SourceId b = a + 1; b < 40; ++b) {
        uint64_t key = PairKey(a, b);
        size_t owners = 0;
        for (uint32_t shard = 0; shard < num_shards; ++shard) {
          ShardPlan plan{num_shards, shard};
          if (plan.Owns(key)) ++owners;
        }
        EXPECT_EQ(owners, 1u)
            << "key " << key << " at " << num_shards << " shards";
      }
    }
  }
}

TEST(ShardPlan, RoughlyBalancedPartition) {
  constexpr uint32_t kShards = 4;
  std::vector<size_t> owned(kShards, 0);
  size_t total = 0;
  for (SourceId a = 0; a < 80; ++a) {
    for (SourceId b = a + 1; b < 80; ++b) {
      for (uint32_t shard = 0; shard < kShards; ++shard) {
        if (ShardPlan{kShards, shard}.Owns(PairKey(a, b))) {
          ++owned[shard];
        }
      }
      ++total;
    }
  }
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(owned[shard], total / kShards / 2) << "shard " << shard;
    EXPECT_LT(owned[shard], total / kShards * 2) << "shard " << shard;
  }
}

TEST(ShardPlan, InactivePlanOwnsEverything) {
  ShardPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.primary());
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(plan.Owns(key));
  }
}

TEST(ShardPlan, ValidateRejectsBadPlans) {
  EXPECT_FALSE((ShardPlan{0, 0}).Validate().ok());
  EXPECT_FALSE((ShardPlan{2, 2}).Validate().ok());
  EXPECT_FALSE((ShardPlan{2, 7}).Validate().ok());
  EXPECT_TRUE((ShardPlan{1, 0}).Validate().ok());
  EXPECT_TRUE((ShardPlan{7, 6}).Validate().ok());
}

// ---------------------------------------------------------------------
// MergeShardResults: the shard-set requirements.

ShardResult MakeShard(uint32_t num_shards, uint32_t shard_id,
                      int round) {
  ShardResult shard;
  shard.num_shards = num_shards;
  shard.shard_id = shard_id;
  shard.round = round;
  return shard;
}

TEST(MergeShardResults, RejectsIncompleteOrInconsistentSets) {
  CopyResult copies;
  Counters counters;
  {
    // Missing shard 1 of 2.
    std::vector<ShardResult> shards = {MakeShard(2, 0, 1)};
    EXPECT_FALSE(MergeShardResults(shards, &copies, &counters).ok());
  }
  {
    // Shard 0 present twice.
    std::vector<ShardResult> shards = {MakeShard(2, 0, 1),
                                       MakeShard(2, 0, 1)};
    EXPECT_FALSE(MergeShardResults(shards, &copies, &counters).ok());
  }
  {
    // Disagreeing plan widths.
    std::vector<ShardResult> shards = {MakeShard(2, 0, 1),
                                       MakeShard(3, 1, 1)};
    EXPECT_FALSE(MergeShardResults(shards, &copies, &counters).ok());
  }
  {
    // Disagreeing rounds.
    std::vector<ShardResult> shards = {MakeShard(2, 0, 1),
                                       MakeShard(2, 1, 2)};
    EXPECT_FALSE(MergeShardResults(shards, &copies, &counters).ok());
  }
  {
    // A complete, consistent set merges.
    std::vector<ShardResult> shards = {MakeShard(2, 0, 1),
                                       MakeShard(2, 1, 1)};
    EXPECT_TRUE(MergeShardResults(shards, &copies, &counters).ok());
  }
}

// ---------------------------------------------------------------------
// Bit-identity of the in-process N-shard harness, every registered
// detector x shards {1,2,4,7} x threads {1,4}. EXPECT_EQ on doubles is
// exact equality — no tolerance anywhere.

void ExpectSameCopies(const CopyResult& got, const CopyResult& want) {
  EXPECT_EQ(got.NumTracked(), want.NumTracked());
  size_t checked = 0;
  want.ForEach([&](SourceId a, SourceId b, const PairPosterior& w) {
    PairPosterior g = got.Get(a, b);
    EXPECT_EQ(g.p_indep, w.p_indep) << "pair " << a << "," << b;
    EXPECT_EQ(g.p_first_copies, w.p_first_copies)
        << "pair " << a << "," << b;
    EXPECT_EQ(g.p_second_copies, w.p_second_copies)
        << "pair " << a << "," << b;
    ++checked;
  });
  EXPECT_EQ(checked, want.NumTracked());
}

void ExpectSameFusion(const FusionResult& got,
                      const FusionResult& want) {
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.converged, want.converged);
  ASSERT_EQ(got.value_probs.size(), want.value_probs.size());
  for (size_t v = 0; v < want.value_probs.size(); ++v) {
    EXPECT_EQ(got.value_probs[v], want.value_probs[v]) << "slot " << v;
  }
  ASSERT_EQ(got.accuracies.size(), want.accuracies.size());
  for (size_t s = 0; s < want.accuracies.size(); ++s) {
    EXPECT_EQ(got.accuracies[s], want.accuracies[s]) << "src " << s;
  }
  EXPECT_EQ(got.truth, want.truth);
  ExpectSameCopies(got.copies, want.copies);
}

FusionOptions TestFusionOptions(Executor* executor) {
  FusionOptions options;
  options.params = PaperParams();
  options.params.executor = executor;
  options.max_rounds = 4;
  return options;
}

TEST(ShardedDetector, BitIdenticalToUnshardedEveryDetector) {
  World world = SmallWorld(11);
  for (const std::string& name : ListDetectors()) {
    for (uint32_t shards : {1u, 2u, 4u, 7u}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        SCOPED_TRACE(name + " shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        Executor baseline_executor(threads);
        FusionOptions options = TestFusionOptions(&baseline_executor);
        auto plain =
            DetectorRegistry::Global().Create(name, options.params);
        ASSERT_TRUE(plain.ok()) << plain.status().message();
        auto want =
            IterativeFusion(options).Run(world.data, plain->get());
        ASSERT_TRUE(want.ok()) << want.status().message();

        Executor sharded_executor(threads);
        FusionOptions sharded_options =
            TestFusionOptions(&sharded_executor);
        auto sharded = ShardedDetector::Create(
            name, sharded_options.params, shards);
        ASSERT_TRUE(sharded.ok()) << sharded.status().message();
        auto got = IterativeFusion(sharded_options)
                       .Run(world.data, sharded->get());
        ASSERT_TRUE(got.ok()) << got.status().message();

        ExpectSameFusion(*got, *want);
      }
    }
  }
}

TEST(ShardedDetector, RejectsUnknownInnerDetector) {
  DetectionParams params = PaperParams();
  EXPECT_FALSE(ShardedDetector::Create("no-such", params, 2).ok());
}

TEST(ShardedDetector, RejectsInvalidShardCount) {
  DetectionParams params = PaperParams();
  EXPECT_FALSE(ShardedDetector::Create("index", params, 0).ok());
}

// ---------------------------------------------------------------------
// The multi-process BSP protocol through the Session facade, run
// in-process: coordinator Init, N RunShardRound sessions per round,
// MergeShardRound, until done — against one plain Session::Run.

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SessionOptions BspOptions(const std::string& detector,
                          uint32_t num_shards, uint32_t shard_id) {
  SessionOptions options;
  options.detector = detector;
  options.threads = 1;
  options.max_rounds = 5;
  options.plan.num_shards = num_shards;
  options.plan.shard_id = shard_id;
  return options;
}

Report RunBsp(const Dataset& data, const std::string& detector,
              uint32_t num_shards, const std::string& tag) {
  const std::string state_path = TempPath("bsp_state_" + tag);
  Session coordinator = [&] {
    auto made = Session::Create(BspOptions(detector, num_shards, 0));
    CD_CHECK_OK(made.status());
    return std::move(made).value();
  }();
  CD_CHECK_OK(coordinator.InitShardedRun(data, state_path));
  std::vector<Session> shards;
  for (uint32_t i = 0; i < num_shards; ++i) {
    auto made = Session::Create(BspOptions(detector, num_shards, i));
    CD_CHECK_OK(made.status());
    shards.push_back(std::move(made).value());
  }
  bool done = false;
  for (int round = 0; round < 64 && !done; ++round) {
    std::vector<std::string> shard_paths;
    for (uint32_t i = 0; i < num_shards; ++i) {
      std::string shard_path =
          TempPath("bsp_shard_" + tag + "_" + std::to_string(i));
      CD_CHECK_OK(shards[i].RunShardRound(data, state_path, shard_path));
      shard_paths.push_back(shard_path);
    }
    auto merged =
        coordinator.MergeShardRound(data, shard_paths, state_path);
    CD_CHECK_OK(merged.status());
    done = *merged;
    for (const std::string& p : shard_paths) std::remove(p.c_str());
  }
  EXPECT_TRUE(done) << "BSP run never finished";
  std::remove(state_path.c_str());
  return coordinator.report();
}

TEST(SessionBsp, BitIdenticalToSingleProcessRun) {
  World world = SmallWorld(23);
  for (const std::string detector : {"index", "pairwise", "hybrid"}) {
    for (uint32_t num_shards : {2u, 3u}) {
      SCOPED_TRACE(std::string(detector) +
                   " shards=" + std::to_string(num_shards));
      SessionOptions options;
      options.detector = detector;
      options.threads = 1;
      options.max_rounds = 5;
      auto session = Session::Create(options);
      ASSERT_TRUE(session.ok()) << session.status().message();
      auto want = session->Run(world.data);
      ASSERT_TRUE(want.ok()) << want.status().message();

      Report got = RunBsp(
          world.data, detector, num_shards,
          detector + std::to_string(num_shards));
      ExpectSameFusion(got.fusion, want->fusion);
      // The merged counters reproduce the single-process totals: each
      // pair is scanned by exactly its owning shard.
      EXPECT_EQ(got.counters.pairs_tracked,
                want->counters.pairs_tracked);
      EXPECT_EQ(got.counters.score_evals, want->counters.score_evals);
    }
  }
}

TEST(SessionBsp, RunWithActivePlanIsRefused) {
  World world = SmallWorld(5);
  auto session = Session::Create(BspOptions("index", 3, 1));
  ASSERT_TRUE(session.ok()) << session.status().message();
  auto report = session->Run(world.data);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("InitShardedRun"),
            std::string::npos);
}

TEST(SessionBsp, ActivePlanIncompatibleWithOnlineUpdates) {
  SessionOptions options = BspOptions("index", 2, 0);
  options.online_updates = true;
  EXPECT_FALSE(Session::Create(options).ok());
}

TEST(SessionBsp, InvalidPlanRejectedAtCreate) {
  EXPECT_FALSE(Session::Create(BspOptions("index", 2, 5)).ok());
}

TEST(SessionBsp, IncrementalDetectorIsRefused) {
  World world = SmallWorld(5);
  auto session = Session::Create(BspOptions("incremental", 2, 0));
  ASSERT_TRUE(session.ok()) << session.status().message();
  Status status =
      session->InitShardedRun(world.data, TempPath("bsp_incr_state"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("incremental"), std::string::npos);
}

TEST(SessionBsp, ShardRoundRejectsMismatchedPlanWidth) {
  World world = SmallWorld(5);
  const std::string state_path = TempPath("bsp_width_state");
  auto coordinator = Session::Create(BspOptions("index", 2, 0));
  ASSERT_TRUE(coordinator.ok());
  CD_CHECK_OK(coordinator->InitShardedRun(world.data, state_path));
  auto wrong = Session::Create(BspOptions("index", 3, 1));
  ASSERT_TRUE(wrong.ok());
  Status status = wrong->RunShardRound(world.data, state_path,
                                       TempPath("bsp_width_shard"));
  EXPECT_FALSE(status.ok());
  std::remove(state_path.c_str());
}

}  // namespace
}  // namespace copydetect
