#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace copydetect {
namespace {

PairPosterior Copying() { return PairPosterior{0.1, 0.45, 0.45}; }
PairPosterior Clean() { return PairPosterior{0.9, 0.05, 0.05}; }

TEST(ComparePairs, PerfectAgreement) {
  CopyResult a;
  CopyResult b;
  a.Set(1, 2, Copying());
  b.Set(1, 2, Copying());
  PrfScores scores = ComparePairs(a, b);
  EXPECT_EQ(scores.precision, 1.0);
  EXPECT_EQ(scores.recall, 1.0);
  EXPECT_EQ(scores.f1, 1.0);
}

TEST(ComparePairs, PartialOverlap) {
  CopyResult result;
  CopyResult reference;
  result.Set(1, 2, Copying());
  result.Set(3, 4, Copying());   // false positive
  reference.Set(1, 2, Copying());
  reference.Set(5, 6, Copying());  // missed
  reference.Set(3, 4, Clean());    // reference says clean
  PrfScores scores = ComparePairs(result, reference);
  EXPECT_NEAR(scores.precision, 0.5, 1e-9);
  EXPECT_NEAR(scores.recall, 0.5, 1e-9);
  EXPECT_NEAR(scores.f1, 0.5, 1e-9);
  EXPECT_EQ(scores.output_pairs, 2u);
  EXPECT_EQ(scores.reference_pairs, 2u);
}

TEST(ComparePairs, EmptyOutputHasPerfectPrecision) {
  CopyResult result;
  CopyResult reference;
  reference.Set(1, 2, Copying());
  PrfScores scores = ComparePairs(result, reference);
  EXPECT_EQ(scores.precision, 1.0);
  EXPECT_EQ(scores.recall, 0.0);
  EXPECT_EQ(scores.f1, 0.0);
}

TEST(ComparePairsToTruth, OrderInsensitive) {
  CopyResult result;
  result.Set(2, 1, Copying());
  std::vector<std::pair<SourceId, SourceId>> truth = {{1, 2}};
  PrfScores scores = ComparePairsToTruth(result, truth);
  EXPECT_EQ(scores.f1, 1.0);
}

TEST(FusionDifference, CountsDisagreementsOverNonEmptyItems) {
  testutil::ExampleFixture fx;
  const Dataset& data = fx.world.data;
  std::vector<SlotId> a(data.num_items());
  std::vector<SlotId> b(data.num_items());
  for (ItemId d = 0; d < data.num_items(); ++d) {
    a[d] = data.slot_begin(d);
    b[d] = data.slot_begin(d);
  }
  EXPECT_EQ(FusionDifference(data, a, b), 0.0);
  b[0] = a[0] + 1;
  EXPECT_NEAR(FusionDifference(data, a, b), 0.2, 1e-9);  // 1 of 5
}

TEST(AccuracyVariance, MeanAbsoluteDifference) {
  std::vector<double> a = {0.5, 0.8, 0.2};
  std::vector<double> b = {0.6, 0.8, 0.1};
  EXPECT_NEAR(AccuracyVariance(a, b), 0.2 / 3.0, 1e-12);
  EXPECT_EQ(AccuracyVariance({}, {}), 0.0);
}

}  // namespace
}  // namespace copydetect
