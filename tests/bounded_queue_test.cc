#include "common/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<std::string> queue(4);
  queue.Push("a");
  queue.Push("b");
  queue.Close();
  EXPECT_FALSE(queue.Push("c"));       // rejected after close
  EXPECT_EQ(queue.Pop(), "a");         // but the backlog drains
  EXPECT_EQ(queue.Pop(), "b");
  EXPECT_EQ(queue.Pop(), std::nullopt);  // then end-of-stream
  EXPECT_EQ(queue.Pop(), std::nullopt);  // idempotent
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(1);
  std::thread popper([&queue] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.join();
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks: capacity 1, occupied
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop(), 1);
  pusher.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::thread pusher([&queue] { EXPECT_FALSE(queue.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  pusher.join();
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
  // The serving shape: several connections push update jobs, one
  // session worker drains. Everything pushed before Close must come
  // out exactly once.
  BoundedQueue<int> queue(3);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    while (auto item = queue.Pop()) seen.push_back(*item);
  });
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::vector<bool> hit(kProducers * kPerProducer, false);
  for (int v : seen) {
    ASSERT_FALSE(hit[static_cast<size_t>(v)]);
    hit[static_cast<size_t>(v)] = true;
  }
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> queue(2);
  queue.Push(std::make_unique<int>(5));
  auto out = queue.Pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

TEST(BoundedQueue, CapacityClampsToAtLeastOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

}  // namespace
}  // namespace copydetect
