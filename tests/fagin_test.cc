#include "core/fagin_input.h"

#include <gtest/gtest.h>

#include "core/index_algo.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::ExampleFixture;
using testutil::PaperParams;

TEST(BuildFaginInput, ListsAreSortedDescending) {
  ExampleFixture fx;
  Counters counters;
  OverlapCounts overlaps = ComputeOverlaps(fx.world.data);
  auto input =
      BuildFaginInput(fx.Input(), PaperParams(), overlaps, &counters);
  ASSERT_TRUE(input.ok());
  for (const NraList& list : input->fwd_lists) {
    for (size_t i = 1; i < list.entries.size(); ++i) {
      EXPECT_GE(list.entries[i - 1].second, list.entries[i].second);
    }
  }
  // 13 entries + 1 difference list.
  EXPECT_EQ(input->fwd_lists.size(), 14u);
  EXPECT_GT(input->build_seconds, 0.0);
}

TEST(BuildFaginInput, DifferenceListCoversTrackedPairs) {
  ExampleFixture fx;
  Counters counters;
  OverlapCounts overlaps = ComputeOverlaps(fx.world.data);
  auto input =
      BuildFaginInput(fx.Input(), PaperParams(), overlaps, &counters);
  ASSERT_TRUE(input.ok());
  const NraList& diff = input->fwd_lists.back();
  // Every entry is non-positive: ln(1-s) * (l - n) <= 0.
  for (const auto& [key, score] : diff.entries) {
    EXPECT_LE(score, 1e-12);
  }
}

TEST(FaginTopK, TopPairIsAStrongCopier) {
  ExampleFixture fx;
  Counters counters;
  OverlapCounts overlaps = ComputeOverlaps(fx.world.data);
  auto input =
      BuildFaginInput(fx.Input(), PaperParams(), overlaps, &counters);
  ASSERT_TRUE(input.ok());
  NraResult top = FaginTopK(*input, 3, /*forward=*/true);
  ASSERT_GE(top.top.size(), 1u);
  // The strongest forward score belongs to one of the copier cliques.
  SourceId a = PairFirst(top.top[0].first);
  SourceId b = PairSecond(top.top[0].first);
  bool clique_23 = a >= 2 && a <= 4 && b >= 2 && b <= 4;
  bool clique_68 = a >= 6 && a <= 8 && b >= 6 && b <= 8;
  EXPECT_TRUE(clique_23 || clique_68) << a << "," << b;
}

TEST(FaginInputDetector, SameCopyingPairsAsIndex) {
  ExampleFixture fx;
  FaginInputDetector fagin(PaperParams());
  IndexDetector index_detector(PaperParams());
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(fagin.DetectRound(fx.Input(), 1, &r1).ok());
  ASSERT_TRUE(index_detector.DetectRound(fx.Input(), 1, &r2).ok());
  // FAGININPUT has no tail skipping, so it may track more pairs, but
  // the copying conclusions agree.
  EXPECT_EQ(testutil::CopySet(r1), testutil::CopySet(r2));
}

TEST(FaginInputDetector, RandomWorldAgreement) {
  testutil::World world = testutil::SmallWorld(401, 40, 250);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  FaginInputDetector fagin(PaperParams());
  IndexDetector index_detector(PaperParams());
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(fagin.DetectRound(in, 1, &r1).ok());
  ASSERT_TRUE(index_detector.DetectRound(in, 1, &r2).ok());
  EXPECT_EQ(testutil::CopySet(r1), testutil::CopySet(r2));
}

}  // namespace
}  // namespace copydetect
