#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/table.h"
#include "test_util.h"

namespace copydetect {
namespace {

TEST(MakeWorldByName, KnownNames) {
  for (const char* name :
       {"book-cs", "book-full", "stock-1day", "stock-2wk"}) {
    auto world = MakeWorldByName(name, 0.02, 1);
    ASSERT_TRUE(world.ok()) << name;
    EXPECT_GT(world->data.num_sources(), 0u);
    EXPECT_GT(world->data.num_observations(), 0u);
  }
  auto example = MakeWorldByName("example", 1.0, 1);
  ASSERT_TRUE(example.ok());
  EXPECT_EQ(example->data.num_sources(), 10u);
}

TEST(MakeWorldByName, UnknownNameFails) {
  auto world = MakeWorldByName("mystery", 1.0, 1);
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.status().code(), StatusCode::kNotFound);
}

TEST(DefaultSamplingRate, MatchesPaper) {
  EXPECT_EQ(DefaultSamplingRate("stock-2wk"), 0.01);
  EXPECT_EQ(DefaultSamplingRate("book-cs"), 0.1);
  EXPECT_EQ(DefaultSamplingRate("stock-1day"), 0.1);
}

TEST(RunFusion, SmokeOnSmallWorld) {
  testutil::World world = testutil::SmallWorld(601);
  FusionOptions options;
  options.params = testutil::PaperParams();
  options.max_rounds = 6;
  auto outcome = RunFusion(world, DetectorKind::kHybrid, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->detector_name, "hybrid");
  EXPECT_GT(outcome->counters.Total(), 0u);
  EXPECT_GT(outcome->seconds, 0.0);
  EXPECT_EQ(outcome->fusion.truth.size(), world.data.num_items());
}

TEST(RunFusion, DetectorsFindPlantedCopiers) {
  testutil::World world = testutil::SmallWorld(602);
  FusionOptions options;
  options.params = testutil::PaperParams();
  options.max_rounds = 6;
  auto outcome = RunFusion(world, DetectorKind::kPairwise, options);
  ASSERT_TRUE(outcome.ok());
  PrfScores prf =
      ComparePairsToTruth(outcome->fusion.copies, world.copy_pairs);
  EXPECT_GE(prf.recall, 0.7);
}

TEST(MakeSampledDetector, WrapsBase) {
  auto detector = MakeSampledDetector(testutil::PaperParams(),
                                      DetectorKind::kIncremental,
                                      SamplingMethod::kScaleSample, 0.1);
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), "scale-sample(incremental)");
}

TEST(TextTable, RendersAligned) {
  TextTable table;
  table.SetHeader({"Method", "Time"});
  table.AddRow({"pairwise", "321"});
  table.AddRow({"index", "1.6"});
  std::string out = table.Render("Table VII");
  EXPECT_NE(out.find("Table VII"), std::string::npos);
  EXPECT_NE(out.find("pairwise"), std::string::npos);
  EXPECT_NE(out.find("Method"), std::string::npos);
  // Column alignment: "Time" starts at the same offset in each line.
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(DetectorKinds, NamesRoundTrip) {
  for (DetectorKind kind :
       {DetectorKind::kPairwise, DetectorKind::kIndex,
        DetectorKind::kBound, DetectorKind::kBoundPlus,
        DetectorKind::kHybrid, DetectorKind::kIncremental,
        DetectorKind::kFaginInput, DetectorKind::kParallelIndex}) {
    DetectorKind parsed;
    ASSERT_TRUE(ParseDetectorKind(DetectorKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    auto detector = MakeDetector(kind, testutil::PaperParams());
    ASSERT_NE(detector, nullptr);
    EXPECT_EQ(detector->name(), DetectorKindName(kind));
  }
  DetectorKind parsed;
  EXPECT_FALSE(ParseDetectorKind("bogus", &parsed));
}

}  // namespace
}  // namespace copydetect
