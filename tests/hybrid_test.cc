#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "core/index_algo.h"
#include "test_util.h"

namespace copydetect {
namespace {

using testutil::CopySet;
using testutil::ExampleFixture;
using testutil::PaperParams;

TEST(HybridDetector, MotivatingExampleVerdicts) {
  ExampleFixture fx;
  HybridDetector detector(PaperParams());
  CopyResult result;
  ASSERT_TRUE(detector.DetectRound(fx.Input(), 1, &result).ok());
  EXPECT_TRUE(result.IsCopying(2, 3));
  EXPECT_TRUE(result.IsCopying(6, 8));
  EXPECT_FALSE(result.IsCopying(0, 1));
}

TEST(HybridDetector, SmallPairsUseIndexMode) {
  // With the example's 5 items every pair shares <= 16 items, so
  // HYBRID degenerates to INDEX: identical decisions and no bound
  // evaluations at all.
  ExampleFixture fx;
  HybridDetector hybrid(PaperParams());
  IndexDetector index_detector(PaperParams());
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(hybrid.DetectRound(fx.Input(), 1, &r1).ok());
  ASSERT_TRUE(index_detector.DetectRound(fx.Input(), 1, &r2).ok());
  EXPECT_EQ(hybrid.counters().bound_evals, 0u);
  EXPECT_EQ(CopySet(r1), CopySet(r2));
}

TEST(HybridDetector, LargePairsUseBounds) {
  testutil::World world = testutil::SmallWorld(51, 40, 400);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  HybridDetector hybrid(PaperParams());
  CopyResult result;
  ASSERT_TRUE(hybrid.DetectRound(in, 1, &result).ok());
  // Worlds with high-coverage sources have pairs sharing > 16 items.
  EXPECT_GT(hybrid.counters().bound_evals, 0u);
  EXPECT_GT(hybrid.counters().early_copy + hybrid.counters().early_nocopy,
            0u);
}

TEST(HybridDetector, QualityCloseToIndex) {
  for (uint64_t seed : {61ULL, 62ULL, 63ULL}) {
    testutil::World world = testutil::SmallWorld(seed, 50, 300);
    testutil::WorldInput wi(world);
    DetectionInput in = wi.Input(world);
    HybridDetector hybrid(PaperParams());
    IndexDetector index_detector(PaperParams());
    CopyResult r1;
    CopyResult r2;
    ASSERT_TRUE(hybrid.DetectRound(in, 1, &r1).ok());
    ASSERT_TRUE(index_detector.DetectRound(in, 1, &r2).ok());
    std::vector<uint64_t> a = CopySet(r1);
    std::vector<uint64_t> b = CopySet(r2);
    size_t hits = 0;
    for (uint64_t key : a) {
      if (std::find(b.begin(), b.end(), key) != b.end()) ++hits;
    }
    ASSERT_FALSE(b.empty()) << "seed " << seed;
    EXPECT_GE(static_cast<double>(hits) / static_cast<double>(b.size()),
              0.9);
    if (!a.empty()) {
      EXPECT_GE(static_cast<double>(hits) / static_cast<double>(a.size()),
                0.9);
    }
  }
}

TEST(HybridDetector, ThresholdZeroMatchesBoundPlus) {
  // hybrid_threshold = 0 turns HYBRID into pure BOUND+.
  testutil::World world = testutil::SmallWorld(71, 30, 200);
  testutil::WorldInput wi(world);
  DetectionInput in = wi.Input(world);
  DetectionParams params = PaperParams();
  params.hybrid_threshold = 0;
  HybridDetector hybrid(params);
  BoundDetector bound_plus(params, /*lazy=*/true);
  CopyResult r1;
  CopyResult r2;
  ASSERT_TRUE(hybrid.DetectRound(in, 1, &r1).ok());
  ASSERT_TRUE(bound_plus.DetectRound(in, 1, &r2).ok());
  EXPECT_EQ(CopySet(r1), CopySet(r2));
  EXPECT_EQ(hybrid.counters().Total(), bound_plus.counters().Total());
}

}  // namespace
}  // namespace copydetect
