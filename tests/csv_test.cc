#include "common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace copydetect {
namespace {

TEST(ParseCsvLine, PlainFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLine, QuotedFields) {
  auto fields = ParseCsvLine("\"a,b\",c,\"d\"\"e\"");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a,b");
  EXPECT_EQ((*fields)[1], "c");
  EXPECT_EQ((*fields)[2], "d\"e");
}

TEST(ParseCsvLine, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
  for (const auto& f : *fields) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLine, RejectsMalformed) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvFile, RoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cd_csv_test.csv")
          .string();
  std::vector<std::vector<std::string>> rows = {
      {"source", "item", "value"},
      {"S1", "NJ", "Trenton"},
      {"S2", "NJ", "Atlantic, City"},
  };
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileIsIOError) {
  auto read = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace copydetect
