#include "model/dataset.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "test_util.h"

namespace copydetect {
namespace {

TEST(DatasetBuilder, BuildsSmallDataset) {
  DatasetBuilder builder;
  builder.Add("S1", "NJ", "Trenton");
  builder.Add("S2", "NJ", "Trenton");
  builder.Add("S2", "AZ", "Phoenix");
  builder.Add("S1", "AZ", "Tucson");
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_sources(), 2u);
  EXPECT_EQ(data->num_items(), 2u);
  EXPECT_EQ(data->num_observations(), 4u);
  EXPECT_EQ(data->num_slots(), 3u);  // Trenton, Phoenix, Tucson
}

TEST(DatasetBuilder, RejectsConflictingObservation) {
  DatasetBuilder builder;
  builder.Add("S1", "NJ", "Trenton");
  builder.Add("S1", "NJ", "Atlantic");
  auto data = builder.Build();
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetBuilder, ToleratesExactDuplicates) {
  DatasetBuilder builder;
  builder.Add("S1", "NJ", "Trenton");
  builder.Add("S1", "NJ", "Trenton");
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_observations(), 1u);
}

TEST(Dataset, SlotLayoutInvariants) {
  testutil::ExampleFixture fx;
  const Dataset& data = fx.world.data;
  // Slots are contiguous by item and providers partition each item.
  for (ItemId d = 0; d < data.num_items(); ++d) {
    size_t total = 0;
    for (SlotId v = data.slot_begin(d); v < data.slot_end(d); ++v) {
      EXPECT_EQ(data.slot_item(v), d);
      total += data.providers(v).size();
    }
    EXPECT_EQ(total, data.item_providers(d).size());
  }
}

TEST(Dataset, PerSourceArraysSortedByItem) {
  testutil::World world = testutil::SmallWorld(81);
  const Dataset& data = world.data;
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    std::span<const ItemId> items = data.items_of(s);
    for (size_t i = 1; i < items.size(); ++i) {
      EXPECT_LT(items[i - 1], items[i]);
    }
  }
}

TEST(Dataset, SlotOfFindsValues) {
  testutil::ExampleFixture fx;
  const Dataset& data = fx.world.data;
  // S0 provides Trenton for NJ (item 0) and nothing for FL (item 3).
  SlotId nj = data.slot_of(0, 0);
  ASSERT_NE(nj, kInvalidSlot);
  EXPECT_EQ(data.slot_value(nj), "Trenton");
  EXPECT_EQ(data.slot_of(0, 3), kInvalidSlot);
}

TEST(Dataset, ProvidersAreSortedAndDisjointAcrossSlots) {
  testutil::ExampleFixture fx;
  const Dataset& data = fx.world.data;
  for (ItemId d = 0; d < data.num_items(); ++d) {
    std::vector<SourceId> seen;
    for (SlotId v = data.slot_begin(d); v < data.slot_end(d); ++v) {
      std::span<const SourceId> providers = data.providers(v);
      for (size_t i = 1; i < providers.size(); ++i) {
        EXPECT_LT(providers[i - 1], providers[i]);
      }
      for (SourceId s : providers) {
        EXPECT_EQ(std::count(seen.begin(), seen.end(), s), 0)
            << "source " << s << " appears in two slots of item " << d;
        seen.push_back(s);
      }
    }
  }
}

TEST(Dataset, MotivatingExampleShape) {
  testutil::ExampleFixture fx;
  const Dataset& data = fx.world.data;
  EXPECT_EQ(data.num_sources(), 10u);
  EXPECT_EQ(data.num_items(), 5u);
  // 10 sources x 5 items - 5 missing cells (Table I).
  EXPECT_EQ(data.num_observations(), 45u);
  // 16 distinct (item, value) pairs: 3+3+3+3+4.
  EXPECT_EQ(data.num_slots(), 16u);
  EXPECT_EQ(data.coverage(9), 3u);
  EXPECT_EQ(data.coverage(1), 5u);
}

TEST(Dataset, CsvRoundTrip) {
  testutil::ExampleFixture fx;
  std::string path =
      (std::filesystem::temp_directory_path() / "cd_dataset_test.csv")
          .string();
  ASSERT_TRUE(fx.world.data.SaveCsv(path).ok());
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_sources(), fx.world.data.num_sources());
  EXPECT_EQ(loaded->num_items(), fx.world.data.num_items());
  EXPECT_EQ(loaded->num_observations(),
            fx.world.data.num_observations());
  EXPECT_EQ(loaded->num_slots(), fx.world.data.num_slots());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// LoadCsv error paths (the happy path is covered by CsvRoundTrip).

/// Writes `content` to a temp CSV and returns the path.
std::string WriteTempCsv(const std::string& name,
                         const std::string& content) {
  std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

TEST(DatasetLoadCsv, RejectsMalformedRow) {
  std::string path = WriteTempCsv("cd_loadcsv_malformed.csv",
                                  "S1,NJ,Trenton\nS2,NJ\n");
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("expected 3 fields"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(DatasetLoadCsv, RejectsConflictingDuplicateObservation) {
  // The same (source, item) cell with two different values — including
  // the case where another source's row separates the conflicting
  // pair in every sort order the builder uses.
  std::string path = WriteTempCsv(
      "cd_loadcsv_conflict.csv",
      "S1,NJ,Trenton\nS2,NJ,Trenton\nS1,NJ,Atlantic\n");
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("two values"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(DatasetLoadCsv, ToleratesExactDuplicateRows) {
  std::string path = WriteTempCsv(
      "cd_loadcsv_dup.csv", "S1,NJ,Trenton\nS1,NJ,Trenton\n");
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_observations(), 1u);
  std::remove(path.c_str());
}

TEST(DatasetLoadCsv, EmptyFileYieldsEmptyDataset) {
  std::string path = WriteTempCsv("cd_loadcsv_empty.csv", "");
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_sources(), 0u);
  EXPECT_EQ(loaded->num_items(), 0u);
  EXPECT_EQ(loaded->num_observations(), 0u);
  std::remove(path.c_str());
}

TEST(DatasetLoadCsv, HeaderOnlyFileYieldsEmptyDataset) {
  std::string path =
      WriteTempCsv("cd_loadcsv_header.csv", "source,item,value\n");
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_observations(), 0u);
  std::remove(path.c_str());
}

TEST(DatasetLoadCsv, MissingFileFails) {
  auto loaded = Dataset::LoadCsv("/no/such/dir/cd_loadcsv_missing.csv");
  EXPECT_FALSE(loaded.ok());
}

TEST(Dataset, EmptyBuilderProducesEmptyDataset) {
  DatasetBuilder builder;
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_sources(), 0u);
  EXPECT_EQ(data->num_items(), 0u);
  EXPECT_EQ(data->num_slots(), 0u);
}

TEST(Dataset, SourceWithNoObservationsKept) {
  DatasetBuilder builder;
  builder.AddSource("lonely");
  builder.Add("S1", "NJ", "Trenton");
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_sources(), 2u);
  EXPECT_EQ(data->coverage(0), 0u);
}

}  // namespace
}  // namespace copydetect
