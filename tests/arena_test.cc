#include "common/arena.h"

#include <cstring>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "common/flat_hash.h"

namespace copydetect {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> blocks;
  for (size_t i = 1; i <= 64; ++i) {
    size_t bytes = i * 7;
    char* p = arena.AllocateArray<char>(bytes);
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(i), bytes);
    blocks.emplace_back(p, bytes);
  }
  double* d = arena.AllocateArray<double>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  uint32_t* u = arena.AllocateArray<uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(u) % alignof(uint32_t), 0u);
  // No allocation overwrote an earlier one.
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t k = 0; k < blocks[i].second; ++k) {
      ASSERT_EQ(blocks[i].first[k], static_cast<char>(i + 1));
    }
  }
}

TEST(ArenaTest, GrowsAcrossChunksAndConsolidatesOnReset) {
  Arena arena(1 << 10);
  // Overflow the initial chunk several times over.
  for (int i = 0; i < 64; ++i) arena.AllocateArray<char>(4096);
  EXPECT_GT(arena.num_chunks(), 1u);
  size_t used = arena.bytes_used();
  EXPECT_GE(used, size_t{64} * 4096);

  arena.Reset();
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GE(arena.bytes_reserved(), used);

  // The same working set now fits the consolidated chunk: steady state
  // never grows again.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) arena.AllocateArray<char>(4096);
    EXPECT_EQ(arena.num_chunks(), 1u);
    arena.Reset();
  }
}

TEST(ArenaTest, ZeroByteAllocationYieldsDistinctPointers) {
  Arena arena;
  char* a = arena.AllocateArray<char>(0);
  char* b = arena.AllocateArray<char>(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

// The bit-identity seam of the arena layer: ArenaHashMap must mirror
// FlatHashMap's probing and growth policy exactly, so the same
// insertion sequence yields the same storage order. The sharded scans'
// finalize walk — and therefore every downstream floating-point
// accumulation and snapshot byte — depends on this equivalence.
TEST(ArenaHashMapTest, MatchesFlatHashMapLayoutOnRandomWorkloads) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 20; ++trial) {
    Arena arena;
    ArenaHashMap<uint64_t> arena_map(&arena);
    FlatHashMap<uint64_t> flat_map;
    size_t n = 1 + static_cast<size_t>(rng() % 3000);
    uint64_t key_range = 1 + rng() % 4000;  // force repeats
    for (size_t i = 0; i < n; ++i) {
      uint64_t key = rng() % key_range;
      arena_map[key] += i;
      flat_map[key] += i;
      if (i % 7 == 0) {
        uint64_t probe_key = rng() % key_range;
        uint64_t* a = arena_map.Find(probe_key);
        uint64_t* f = flat_map.Find(probe_key);
        ASSERT_EQ(a == nullptr, f == nullptr);
        if (a != nullptr) {
          ASSERT_EQ(*a, *f);
        }
      }
    }
    ASSERT_EQ(arena_map.size(), flat_map.size());
    // Identical storage order, not merely identical contents.
    std::vector<std::pair<uint64_t, uint64_t>> arena_walk;
    std::vector<std::pair<uint64_t, uint64_t>> flat_walk;
    arena_map.ForEach(
        [&](uint64_t k, uint64_t& v) { arena_walk.emplace_back(k, v); });
    flat_map.ForEach(
        [&](uint64_t k, uint64_t& v) { flat_walk.emplace_back(k, v); });
    ASSERT_EQ(arena_walk, flat_walk);
  }
}

TEST(ArenaHashMapTest, FindOnEmptyAndAbsentKeys) {
  Arena arena;
  ArenaHashMap<int> map(&arena);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);
  map[42] = 7;
  EXPECT_EQ(*map.Find(42), 7);
  EXPECT_EQ(map.Find(43), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(ArenaLeaseTest, SlotReuseAcrossRounds) {
  Executor executor(2);
  Arena* first = nullptr;
  {
    ArenaLease lease = executor.AcquireArena(0);
    first = lease.get();
    ASSERT_NE(first, nullptr);
    lease->AllocateArray<char>(1 << 16);
    EXPECT_GE(lease->bytes_used(), size_t{1} << 16);
  }
  // The same slot hands back the same (reset, still-warm) arena.
  ArenaLease again = executor.AcquireArena(0);
  EXPECT_EQ(again.get(), first);
  EXPECT_EQ(again->bytes_used(), 0u);
  EXPECT_GE(again->bytes_reserved(), size_t{1} << 16);
}

TEST(ArenaLeaseTest, ContendedSlotFallsBackToPrivateArena) {
  Executor executor(2);
  ArenaLease held = executor.AcquireArena(1);
  ArenaLease fallback = executor.AcquireArena(1);
  EXPECT_NE(fallback.get(), held.get());
  // The fallback is fully functional.
  uint32_t* p = fallback->AllocateArray<uint32_t>(8);
  p[7] = 1234;
  EXPECT_EQ(p[7], 1234u);
}

TEST(ArenaLeaseTest, NullExecutorGetsOwnedArena) {
  ArenaLease lease = AcquireArena(nullptr, 3);
  ASSERT_NE(lease.get(), nullptr);
  char* p = lease->AllocateArray<char>(64);
  std::memset(p, 0, 64);
}

// Exercised under tsan in CI: concurrent ParallelFor bodies lease
// distinct arenas (per-slot or fallback) and bump-allocate privately,
// so the scan path introduces no shared mutable allocator state.
TEST(ArenaLeaseTest, ConcurrentLeasesAreExclusive) {
  Executor executor(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<Arena*> leased(8, nullptr);
    executor.ParallelFor(8, [&](size_t i) {
      ArenaLease lease = executor.AcquireArena(i);
      uint64_t* block = lease->AllocateArray<uint64_t>(512);
      for (size_t k = 0; k < 512; ++k) block[k] = i * 1000 + k;
      for (size_t k = 0; k < 512; ++k) {
        ASSERT_EQ(block[k], i * 1000 + k);
      }
      leased[i] = lease.get();
    });
    for (Arena* a : leased) ASSERT_NE(a, nullptr);
  }
}

// Two executors' ParallelFors overlapping from two host threads — the
// guarantee ParallelFor documents — must keep every lease exclusive.
TEST(ArenaLeaseTest, OverlappingParallelForsFromTwoThreads) {
  Executor executor(3);
  std::atomic<int> failures{0};
  Executor outer(2);
  outer.ParallelFor(2, [&](size_t caller) {
    for (int round = 0; round < 25; ++round) {
      ArenaLease lease = executor.AcquireArena(caller);
      uint64_t stamp = caller * 77 + static_cast<uint64_t>(round);
      uint64_t* block = lease->AllocateArray<uint64_t>(256);
      for (size_t k = 0; k < 256; ++k) block[k] = stamp;
      for (size_t k = 0; k < 256; ++k) {
        if (block[k] != stamp) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace copydetect
