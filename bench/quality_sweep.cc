// quality_sweep — the quality-gate harness over the adversarial
// scenario library (datagen/scenarios.h).
//
// Runs every registered scenario through every swept detector, scores
// the detected copy graph against the planted pairs (precision vs the
// clique closure, recall vs the direct edges — eval/quality.h) and
// the fused truth against the gold standard, and prints one table per
// scenario. With --json=<path> it also writes QUALITY.json
// (json_reporter.h:QualityRecord); the quality-gate CI job compares
// that against the committed baseline via
//
//   tools/bench_compare.py --quality bench/baselines/QUALITY.json
//       build/QUALITY.json
//
// so a perf or refactoring PR cannot silently trade away detection
// recall on adaptive, noisy, colluding or churn-heavy sources.
//
//   ./quality_sweep                        # all scenarios, default set
//   ./quality_sweep --scenarios=churn-feed --detectors=hybrid
//   ./quality_sweep --scale=1 --seed=7 --json=QUALITY.json
#include <utility>

#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

namespace {

// The swept detectors: the paper's quality set (Table VI) — the
// reference baseline, the exact index variant and the two approximate
// accelerations whose quality the gate must hold.
constexpr const char* kDefaultDetectors = "pairwise,index,hybrid,incremental";

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  uint64_t seed = 7;
  std::string scenarios_csv;
  std::string detectors_csv = kDefaultDetectors;
  std::string json_path;
  FlagSet flags(
      "quality_sweep: detection/fusion quality on the adversarial "
      "scenario library");
  flags.Double("scale", &scale, "scenario scale factor");
  flags.Uint64("seed", &seed, "scenario generator seed");
  flags.String("scenarios", &scenarios_csv,
               "comma-separated scenario names (default: all)");
  flags.String("detectors", &detectors_csv,
               "comma-separated detector kinds to sweep");
  JsonFlag(flags, &json_path);
  flags.ParseOrDie(argc, argv);

  std::vector<std::string> scenario_names =
      scenarios_csv.empty() ? ScenarioNames() : Split(scenarios_csv, ',');
  std::vector<DetectorKind> kinds;
  for (const std::string& name : Split(detectors_csv, ',')) {
    DetectorKind kind;
    if (!ParseDetectorKind(name, &kind)) {
      std::fprintf(stderr,
                   "quality_sweep: unknown detector kind '%s'\n",
                   name.c_str());
      return 2;
    }
    kinds.push_back(kind);
  }

  QualityReporter reporter("quality_sweep");
  for (const std::string& name : scenario_names) {
    auto scenario_or = MakeScenario(name, scale, seed);
    CD_CHECK_OK(scenario_or.status());
    const Scenario& scenario = *scenario_or;

    TextTable table;
    table.SetHeader({"Detector", "Prec", "Rec", "F-msr", "Accu",
                     "Pairs", "Rounds", "Time"});
    for (DetectorKind kind : kinds) {
      auto result = EvaluateScenario(scenario, kind);
      CD_CHECK_OK(result.status());
      table.AddRow({result->detector, Fmt(result->pairs.precision),
                    Fmt(result->pairs.recall), Fmt(result->pairs.f1),
                    Fmt(result->fusion_accuracy),
                    StrFormat("%zu/%zu", result->pairs.output_pairs,
                              result->pairs.reference_pairs),
                    StrFormat("%d", result->rounds),
                    HumanSeconds(result->seconds)});

      QualityRecord record;
      record.scenario = scenario.name;
      record.detector = result->detector;
      record.scale = scale;
      record.precision = result->pairs.precision;
      record.recall = result->pairs.recall;
      record.f1 = result->pairs.f1;
      record.fusion_accuracy = result->fusion_accuracy;
      record.output_pairs = result->pairs.output_pairs;
      record.reference_pairs = result->pairs.reference_pairs;
      reporter.Add(std::move(record));
    }
    std::printf("%s\n",
                table
                    .Render(StrFormat(
                        "Scenario %s (scale %.2f, %zu deltas, %zu "
                        "planted pairs)",
                        scenario.name.c_str(), scale,
                        scenario.deltas.size(),
                        scenario.world.copy_pairs.size()))
                    .c_str());
  }

  if (!json_path.empty()) {
    if (reporter.empty()) {
      std::fprintf(stderr,
                   "quality_sweep: no records measured — refusing to "
                   "write %s\n",
                   json_path.c_str());
      return 4;
    }
    if (!reporter.WriteFile(json_path)) return 3;
    std::fprintf(stderr, "wrote %zu records to %s\n", reporter.size(),
                 json_path.c_str());
  }
  return 0;
}
