// Ablations of the design choices DESIGN.md calls out:
//   (a) the tail set E̅ (skip pairs sharing only weak values) on/off;
//   (b) the HYBRID threshold (items shared before switching from INDEX
//       bookkeeping to BOUND+), swept around the paper's 16;
//   (c) the §VIII parallel index scan, thread sweep.
#include "core/bound.h"           // cd-lint: allow(layering) white-box ablation bench (docs/API.md exemption)
#include "core/parallel_index.h"  // cd-lint: allow(layering) white-box ablation bench (docs/API.md exemption)

#include "bench_util.h"
#include "fusion/truth_finder.h"  // cd-lint: allow(layering) white-box ablation bench (docs/API.md exemption)

using namespace copydetect;
using namespace copydetect::bench;

namespace {

/// HYBRID via the scan engine with explicit config knobs.
class ConfiguredScanDetector : public CopyDetector {
 public:
  ConfiguredScanDetector(const DetectionParams& params, bool respect_tail)
      : CopyDetector(params), respect_tail_(respect_tail) {}
  std::string_view name() const override { return "configured-scan"; }
  Status DetectRound(const DetectionInput& in, int round,
                     CopyResult* out) override {
    (void)round;
    ScanConfig config;
    config.lazy_bounds = true;
    config.hybrid_threshold = params_.hybrid_threshold;
    config.respect_tail = respect_tail_;
    return BoundedScan(in, params_, config,
                       overlap_cache_.Get(*in.data), &counters_, out,
                       nullptr, nullptr);
  }

 private:
  bool respect_tail_;
  OverlapCache overlap_cache_;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("ablation: DESIGN.md design-choice ablations");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  // --- (a) tail set on/off. ---
  TextTable tail;
  tail.SetHeader({"Dataset", "tail on: time", "pairs", "tail off: time",
                  "pairs"});
  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);
    ConfiguredScanDetector with_tail(options.params, true);
    ConfiguredScanDetector without_tail(options.params, false);
    auto a = RunFusionWithDetector(world, &with_tail, options);
    auto b = RunFusionWithDetector(world, &without_tail, options);
    CD_CHECK_OK(a.status());
    CD_CHECK_OK(b.status());
    tail.AddRow({spec.name, HumanSeconds(a->fusion.detect_seconds),
                 WithCommas(a->counters.pairs_tracked),
                 HumanSeconds(b->fusion.detect_seconds),
                 WithCommas(b->counters.pairs_tracked)});
  }
  std::printf("%s\n",
              tail.Render("Ablation (a) — tail set E̅ on/off (HYBRID)")
                  .c_str());

  // --- (b) hybrid threshold sweep. ---
  TextTable sweep;
  sweep.SetHeader({"Dataset", "threshold", "computations (M)", "time"});
  for (const BenchDataset& spec : QualityDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    for (size_t threshold : {0UL, 4UL, 16UL, 64UL, 256UL}) {
      FusionOptions options = OptionsFor(world);
      options.params.hybrid_threshold = threshold;
      auto outcome = RunFusion(world, DetectorKind::kHybrid, options);
      CD_CHECK_OK(outcome.status());
      sweep.AddRow({spec.name, StrFormat("%zu", threshold),
                    Millions(outcome->counters.Total()),
                    HumanSeconds(outcome->fusion.detect_seconds)});
    }
  }
  std::printf(
      "%s\n",
      sweep.Render("Ablation (b) — HYBRID threshold sweep (paper: 16)")
          .c_str());

  // --- (c) parallel scan thread sweep on the largest data set. ---
  TextTable par;
  par.SetHeader({"Threads", "detect time", "speedup vs 1"});
  {
    World world = MakeWorld(DefaultDatasets(scale).back(), seed);
    FusionOptions options = OptionsFor(world, /*max_rounds=*/4);
    double base = 0.0;
    for (size_t threads : {1UL, 2UL, 4UL, 8UL, 16UL}) {
      ParallelIndexDetector detector(options.params, threads);
      auto outcome = RunFusionWithDetector(world, &detector, options);
      CD_CHECK_OK(outcome.status());
      double secs = outcome->fusion.detect_seconds;
      if (threads == 1) base = secs;
      par.AddRow({StrFormat("%zu", threads), HumanSeconds(secs),
                  Fmt(base / secs, "%.2fx")});
    }
  }
  std::printf("%s\n",
              par.Render("Ablation (c) — §VIII parallel index scan "
                         "(stock-2wk)")
                  .c_str());
  return 0;
}
