// Micro-benchmarks of the primitives behind the detection scan:
// hashing, pair-map updates, Bayesian scoring, index construction,
// overlap counting, NRA, the PAIRWISE inner merge, and one full
// detection round per detector kind.
//
// Beyond the standard Google Benchmark flags, --json=<path> writes
// the measurements as a json_reporter.h document (BENCH_micro.json in
// the perf trajectory) and --threads=<N> sets the width of the
// multi-threaded detector-round variants (0 = hardware concurrency;
// every detector round is additionally measured at threads=1, so one
// run records the speedup curve).
#include <benchmark/benchmark.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

// This harness is deliberately white-box (micro-benchmarks of core
// primitives and the direct-IterativeFusion facade-overhead anchor) —
// it is one of the named exemptions from the examples/bench include
// boundary in docs/API.md.
#include "bench_util.h"
#include "common/flat_hash.h"
#include "common/random.h"
#include "core/bayes.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "core/inverted_index.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "core/pairwise.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "core/sharded_detector.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "fusion/truth_finder.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "simjoin/intersect.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "simjoin/overlap.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "simjoin/prefix_join.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)
#include "topk/nra.h"  // cd-lint: allow(layering) white-box microbench (docs/API.md exemption)

namespace copydetect {
namespace {

DetectionParams Params() {
  DetectionParams params;
  params.alpha = 0.1;
  params.s = 0.8;
  params.n = 50.0;
  return params;
}

World BenchWorld(size_t sources, size_t items) {
  WorldConfig config;
  config.num_sources = sources;
  config.num_items = items;
  config.false_pool = 12;
  config.coverage = {.frac_small = 0.3,
                     .small_lo = 0.05,
                     .small_hi = 0.3,
                     .big_lo = 0.4,
                     .big_hi = 0.9};
  config.copying.num_groups = sources / 10;
  auto world = GenerateWorld(config, 42);
  CD_CHECK_OK(world.status());
  return std::move(world).value();
}

struct WorldInputs {
  World world;
  std::vector<double> probs;
  std::vector<double> accs;

  WorldInputs(size_t sources, size_t items)
      : WorldInputs(BenchWorld(sources, items)) {}

  explicit WorldInputs(World w) : world(std::move(w)) {
    const Dataset& data = world.data;
    probs.assign(data.num_slots(), 0.0);
    for (ItemId d = 0; d < data.num_items(); ++d) {
      double total = static_cast<double>(data.item_providers(d).size());
      for (SlotId v = data.slot_begin(d); v < data.slot_end(d); ++v) {
        probs[v] = total == 0.0
                       ? 0.0
                       : 0.9 * static_cast<double>(
                                   data.providers(v).size()) /
                             total;
      }
    }
    accs = world.true_accuracy;
  }

  DetectionInput Input() const {
    DetectionInput in;
    in.data = &world.data;
    in.value_probs = &probs;
    in.accuracies = &accs;
    return in;
  }
};

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_FlatHashMapUpsert(benchmark::State& state) {
  const size_t keys = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<uint64_t> sequence(1 << 14);
  for (uint64_t& k : sequence) k = rng.NextBelow(keys);
  FlatHashMap<double> map;
  map.Reserve(keys);
  size_t i = 0;
  for (auto _ : state) {
    map[sequence[i & (sequence.size() - 1)]] += 1.0;
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatHashMapUpsert)->Arg(1 << 10)->Arg(1 << 16);

void BM_SharedContribution(benchmark::State& state) {
  DetectionParams params = Params();
  double p = 0.05;
  for (auto _ : state) {
    double c = SharedContribution(p, 0.8, 0.3, params);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SharedContribution);

void BM_MaxEntryContribution(benchmark::State& state) {
  DetectionParams params = Params();
  std::vector<double> accs(static_cast<size_t>(state.range(0)));
  Rng rng(9);
  for (double& a : accs) a = rng.UniformDouble(0.05, 0.95);
  for (auto _ : state) {
    double c = MaxEntryContribution(accs, 0.05, params);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MaxEntryContribution)->Arg(2)->Arg(8)->Arg(64);

void BM_NoCopyPosterior(benchmark::State& state) {
  DetectionParams params = Params();
  for (auto _ : state) {
    double p = NoCopyPosterior(3.4, 2.1, params);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_NoCopyPosterior);

void BM_IndexBuild(benchmark::State& state) {
  WorldInputs inputs(64, static_cast<size_t>(state.range(0)));
  DetectionParams params = Params();
  for (auto _ : state) {
    auto index = InvertedIndex::Build(inputs.Input(), params);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(inputs.world.data.num_slots()));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

void BM_OverlapCounting(benchmark::State& state) {
  WorldInputs inputs(64, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    OverlapCounts counts = ComputeOverlaps(inputs.world.data);
    benchmark::DoNotOptimize(counts);
  }
}
// The 32000-item point keeps the bitmap-vs-per-item crossover of
// ChooseOverlapPath honest at a universe 4x past the perf anchors.
BENCHMARK(BM_OverlapCounting)
    ->Arg(1000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// The sorted-slot intersection kernel across list sizes and skews.
// range(0) is the longer list's length, range(1) the length ratio:
// skew 1 exercises the block-compare SIMD merge, skew >= 32 the
// galloping path (see ChooseKernel in simjoin/intersect.cc). Lists are
// sorted unique u32 draws from a universe sized for ~30% match
// density — the regime the overlap and pairwise layers feed it.
void BM_SortedIntersect(benchmark::State& state) {
  const size_t large = static_cast<size_t>(state.range(0));
  const size_t skew = static_cast<size_t>(state.range(1));
  const size_t small = std::max<size_t>(1, large / skew);
  Rng rng(17);
  const uint32_t universe =
      static_cast<uint32_t>(large * 10 / 3 + small);
  auto draw = [&](size_t n) {
    FlatHashSet seen;
    std::vector<ItemId> out;
    out.reserve(n);
    while (out.size() < n) {
      uint32_t v = static_cast<uint32_t>(rng.NextBelow(universe));
      if (seen.Insert(v)) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<ItemId> a = draw(small);
  std::vector<ItemId> b = draw(large);
  for (auto _ : state) {
    uint32_t size = IntersectSize(a, b);
    benchmark::DoNotOptimize(size);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small + large));
}
BENCHMARK(BM_SortedIntersect)
    ->ArgsProduct({{1 << 6, 1 << 10, 1 << 14}, {1, 8, 256}});

void BM_PrefixJoin(benchmark::State& state) {
  WorldInputs inputs(128, 2000);
  for (auto _ : state) {
    auto pairs = PrefixFilterJoin(inputs.world.data, 16);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_PrefixJoin)->Unit(benchmark::kMillisecond);

void BM_PairMerge(benchmark::State& state) {
  WorldInputs inputs(64, 4000);
  DetectionParams params = Params();
  DetectionInput in = inputs.Input();
  Counters counters;
  SourceId a = 0;
  SourceId b = 1;
  for (auto _ : state) {
    PairScores scores = ComputePairScores(in, a, b, params, &counters);
    benchmark::DoNotOptimize(scores);
    b = static_cast<SourceId>((b + 1) % 64);
    if (b == a) b = static_cast<SourceId>(a + 1);
  }
}
BENCHMARK(BM_PairMerge);

void BM_NraTopK(benchmark::State& state) {
  Rng rng(21);
  std::vector<NraList> lists(8);
  for (NraList& list : lists) {
    for (uint64_t id = 0; id < 2000; ++id) {
      if (rng.Bernoulli(0.5)) {
        list.entries.emplace_back(id, rng.UniformDouble(0.0, 10.0));
      }
    }
    std::sort(list.entries.begin(), list.entries.end(),
              [](const auto& x, const auto& y) {
                return x.second > y.second;
              });
  }
  for (auto _ : state) {
    NraResult result = NraTopK(lists, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NraTopK)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Full detection rounds, one benchmark per detector kind and executor
// width. These are the "per-detector timings" of BENCH_micro.json: a
// single round over a fixed generated world, detector state reset
// every iteration. Each kind is registered at threads=1 (the serial
// path) and at the --threads width, so one run records both ends of
// the speedup curve.

constexpr size_t kDetectorSources = 48;
constexpr size_t kDetectorItems = 1500;

/// Scale of the book-full profile used by BM_IndexRound/book-full —
/// the bench-default scale of that data set (see bench_util.h).
constexpr double kBookFullScale = 0.05;

const WorldInputs& DetectorWorld() {
  static const WorldInputs* inputs =
      new WorldInputs(kDetectorSources, kDetectorItems);
  return *inputs;
}

const WorldInputs& BookFullWorld() {
  static const WorldInputs* inputs = new WorldInputs([] {
    auto world = MakeWorldByName("book-full", kBookFullScale, 42);
    CD_CHECK_OK(world.status());
    return std::move(world).value();
  }());
  return *inputs;
}

void DetectorRoundLoop(benchmark::State& state, const WorldInputs& inputs,
                       const std::string& detector_name) {
  const size_t threads = static_cast<size_t>(state.range(0));
  // One persistent executor per measured configuration, shared across
  // iterations — the pool is part of the runtime, not of the round.
  Executor executor(threads);
  DetectionParams params = Params();
  params.executor = &executor;
  auto detector =
      DetectorRegistry::Global().Create(detector_name, params);
  if (!detector.ok()) {
    state.SkipWithError(detector.status().message().c_str());
    return;
  }
  DetectionInput in = inputs.Input();
  CopyResult result;
  for (auto _ : state) {
    (*detector)->Reset();
    Status status = (*detector)->DetectRound(in, /*round=*/1, &result);
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_DetectorRound(benchmark::State& state,
                      const std::string& detector_name) {
  DetectorRoundLoop(state, DetectorWorld(), detector_name);
}

void BM_IndexRoundBookFull(benchmark::State& state) {
  DetectorRoundLoop(state, BookFullWorld(), "index");
}

/// Session configuration of the facade-overhead pair: the standard
/// bench configuration, one full one-shot run over book-full with the
/// INDEX detector, serial.
SessionOptions BookFullSessionOptions() {
  SessionOptions options =
      bench::SessionOptionsFor(BookFullWorld().world, /*max_rounds=*/6);
  options.detector = "index";
  options.threads = 1;
  return options;
}

/// The full pipeline through the public facade: Session::Create +
/// Run, exactly what examples and the CLI execute per invocation.
void BM_SessionRunBookFull(benchmark::State& state) {
  const World& world = BookFullWorld().world;
  SessionOptions options = BookFullSessionOptions();
  for (auto _ : state) {
    auto session = Session::Create(options);
    if (!session.ok()) {
      state.SkipWithError(session.status().message().c_str());
      break;
    }
    auto report = session->Run(world.data);
    if (!report.ok()) {
      state.SkipWithError(report.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(report->fusion.rounds);
  }
}

/// The online-update anchor: one Session::Update of a small fixed
/// delta (one source's first ten items re-pushed) against a live
/// book-full session, steady state. BM_SessionRun is the cold
/// full-run twin; the perf-gate CI compares both against the
/// committed baseline so a regression in either the update machinery
/// (apply, overlap patching, index rebase, pair splicing) or the
/// plain pipeline fails the PR.
void BM_SessionUpdateBookFull(benchmark::State& state) {
  const World& world = BookFullWorld().world;
  const Dataset& data = world.data;
  SessionOptions options = BookFullSessionOptions();
  options.online_updates = true;
  auto session = Session::Create(options);
  if (!session.ok()) {
    state.SkipWithError(session.status().message().c_str());
    return;
  }
  auto base = session->Run(data);
  if (!base.ok()) {
    state.SkipWithError(base.status().message().c_str());
    return;
  }
  // A fixed feed push: after the first iteration the snapshot already
  // holds these values, so every timed Update measures the same
  // steady-state work.
  DatasetDelta delta;
  std::span<const ItemId> items = data.items_of(0);
  for (size_t i = 0; i < items.size() && i < 10; ++i) {
    delta.Set(data.source_name(0), data.item_name(items[i]),
              "updated-" + std::to_string(i));
  }
  for (auto _ : state) {
    Status status = session->Update(delta);
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
    benchmark::DoNotOptimize(session->report().rounds());
  }
}

/// The warm-start anchor: Session::Load of the snapshot a finished
/// book-full session Save()d — everything a restarted serving process
/// pays instead of the cold BM_SessionRun (CSV/world setup excluded
/// from both). The acceptance bar is Load landing well under the cold
/// run; both anchors feed the perf-gate comparison.
void BM_SessionLoadBookFull(benchmark::State& state) {
  const World& world = BookFullWorld().world;
  SessionOptions options = BookFullSessionOptions();
  options.online_updates = true;  // keep state past Run for Save
  const std::string path = "bm_session_load.cdsnap";
  {
    auto session = Session::Create(options);
    if (!session.ok()) {
      state.SkipWithError(session.status().message().c_str());
      return;
    }
    auto report = session->Run(world.data);
    if (!report.ok()) {
      state.SkipWithError(report.status().message().c_str());
      return;
    }
    Status saved = session->Save(path);
    if (!saved.ok()) {
      state.SkipWithError(saved.message().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto loaded = Session::Load(path, LoadOptions());
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(loaded->report().rounds());
  }
  std::remove(path.c_str());
}

/// Peak-RSS probes for the mapped-load acceptance check. Writing "5"
/// to /proc/self/clear_refs resets the VmHWM high-water mark to the
/// current RSS, so the delta after a load is that load's peak memory
/// growth. Linux-only; callers skip the check when the reset fails.
bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

size_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Returns freed heap pages to the OS so the next load's allocations
/// fault in fresh pages. Without this the warm allocator satisfies
/// the owned decode from already-resident pages and its RSS delta
/// reads ~0, drowning the real comparison in page-reuse noise.
void TrimHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

/// The mapped warm-start anchor: the same snapshot as BM_SessionLoad,
/// loaded with LoadMode::kMapped. The v2 sections back the Dataset
/// arrays and the dense overlap triangle in place, so the mapped load
/// must beat the owned one on both time (perf-gate compares the two
/// records) and peak memory — the one-time VmHWM probe below asserts
/// the memory half and fails the run (SkipWithError, which the
/// --json path turns into exit 4) if mapping silently degraded into a
/// copy. Each measurement starts from a trimmed heap (TrimHeap) and a
/// reset high-water mark, so both deltas count freshly faulted pages
/// rather than allocator page reuse.
void BM_SessionLoadMappedBookFull(benchmark::State& state) {
  const World& world = BookFullWorld().world;
  SessionOptions options = BookFullSessionOptions();
  options.online_updates = true;  // keep state past Run for Save
  const std::string path = "bm_session_load_mapped.cdsnap";
  {
    auto session = Session::Create(options);
    if (!session.ok()) {
      state.SkipWithError(session.status().message().c_str());
      return;
    }
    auto report = session->Run(world.data);
    if (!report.ok()) {
      state.SkipWithError(report.status().message().c_str());
      return;
    }
    Status saved = session->Save(path);
    if (!saved.ok()) {
      state.SkipWithError(saved.message().c_str());
      return;
    }
  }
  static bool rss_checked = false;
  if (!rss_checked && ResetPeakRss()) {
    rss_checked = true;
    TrimHeap();
    ResetPeakRss();
    size_t before = PeakRssKb();
    int mapped_rounds = 0;
    {
      auto mapped = Session::Load(path, LoadMode::kMapped);
      if (!mapped.ok()) {
        state.SkipWithError(mapped.status().message().c_str());
        std::remove(path.c_str());
        return;
      }
      mapped_rounds = mapped->report().rounds();
    }
    size_t mapped_peak_kb = PeakRssKb() - before;
    TrimHeap();
    ResetPeakRss();
    before = PeakRssKb();
    int owned_rounds = 0;
    {
      auto owned = Session::Load(path, LoadMode::kOwned);
      if (!owned.ok()) {
        state.SkipWithError(owned.status().message().c_str());
        std::remove(path.c_str());
        return;
      }
      owned_rounds = owned->report().rounds();
    }
    size_t owned_peak_kb = PeakRssKb() - before;
    if (mapped_rounds != owned_rounds) {
      state.SkipWithError("mapped load diverged from owned load");
      std::remove(path.c_str());
      return;
    }
    if (mapped_peak_kb >= owned_peak_kb) {
      std::string msg = StrFormat(
          "mapped load peak RSS %zu kB >= owned %zu kB — the view "
          "backend is copying",
          mapped_peak_kb, owned_peak_kb);
      state.SkipWithError(msg.c_str());
      std::remove(path.c_str());
      return;
    }
    state.counters["mapped_peak_kb"] = benchmark::Counter(
        static_cast<double>(mapped_peak_kb));
    state.counters["owned_peak_kb"] = benchmark::Counter(
        static_cast<double>(owned_peak_kb));
  }
  for (auto _ : state) {
    auto loaded = Session::Load(path, LoadMode::kMapped);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(loaded->report().rounds());
  }
  std::remove(path.c_str());
}

/// Scale of the book-cs world behind BM_ShardedDetect — the bench
/// default of that data set (see bench_util.h).
constexpr double kBookCsScale = 0.5;

const WorldInputs& BookCsWorld() {
  static const WorldInputs* inputs = new WorldInputs([] {
    auto world = MakeWorldByName("book-cs", kBookCsScale, 42);
    CD_CHECK_OK(world.status());
    return std::move(world).value();
  }());
  return *inputs;
}

/// The in-process sharding anchor: one INDEX detection round through
/// the N-shard harness (N inner detectors, each scanning its slice of
/// the pair set, merged per round). Against BM_DetectorRound/index
/// this prices the shard overhead (N index builds + merge) that the
/// multi-process CLI path pays per round.
void BM_ShardedDetectBookCs(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  Executor executor(1);
  DetectionParams params = Params();
  params.executor = &executor;
  auto detector = ShardedDetector::Create("index", params, shards);
  if (!detector.ok()) {
    state.SkipWithError(detector.status().message().c_str());
    return;
  }
  DetectionInput in = BookCsWorld().Input();
  CopyResult result;
  for (auto _ : state) {
    (*detector)->Reset();
    Status status = (*detector)->DetectRound(in, /*round=*/1, &result);
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}

/// The pre-facade anchor: identical configuration driven directly
/// through IterativeFusion. BM_SessionRun minus BM_FusionRun is the
/// facade's overhead (detector construction, registry lookup, report
/// assembly incl. the copy-graph analysis).
void BM_FusionRunBookFull(benchmark::State& state) {
  const World& world = BookFullWorld().world;
  SessionOptions options = BookFullSessionOptions();
  for (auto _ : state) {
    Executor executor(1);
    FusionOptions fusion = options.ToFusionOptions();
    fusion.params.executor = &executor;
    auto detector =
        DetectorRegistry::Global().Create("index", fusion.params);
    if (!detector.ok()) {
      state.SkipWithError(detector.status().message().c_str());
      break;
    }
    auto result =
        IterativeFusion(fusion).Run(world.data, detector->get());
    if (!result.ok()) {
      state.SkipWithError(result.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->rounds);
  }
}

/// The detector-round benchmarks are named kDetectorPrefix +
/// <registry name> + "/" + threads; CollectingReporter recovers
/// detector and threads by parsing the name. kBookFullPrefix is the
/// INDEX round over the book-full profile (the acceptance speedup
/// anchor); kSessionRunName/kFusionRunName are the facade-overhead
/// pair (full runs, serial).
constexpr std::string_view kDetectorPrefix = "BM_DetectorRound/";
constexpr std::string_view kBookFullPrefix = "BM_IndexRound/book-full";
constexpr std::string_view kSessionRunName = "BM_SessionRun/book-full";
constexpr std::string_view kFusionRunName = "BM_FusionRun/book-full";
constexpr std::string_view kSessionUpdateName =
    "BM_SessionUpdate/book-full";
constexpr std::string_view kSessionLoadName =
    "BM_SessionLoad/book-full";
constexpr std::string_view kSessionLoadMappedName =
    "BM_SessionLoad/mapped/book-full";
constexpr std::string_view kShardedDetectPrefix =
    "BM_ShardedDetect/book-cs";

void RegisterDetectorBenchmarks(size_t multi_threads) {
  // Every registered detector, straight from the registry — a
  // detector added by one CD_REGISTER_DETECTOR stanza shows up here
  // (and in --detector=<name>) with no bench change.
  for (const std::string& name : ListDetectors()) {
    std::string bench_name = std::string(kDetectorPrefix) + name;
    auto* bench = benchmark::RegisterBenchmark(
        bench_name.c_str(), BM_DetectorRound, name);
    bench->Unit(benchmark::kMillisecond)->Arg(1);
    if (multi_threads > 1) bench->Arg(static_cast<int>(multi_threads));
  }
  auto* book_full = benchmark::RegisterBenchmark(
      std::string(kBookFullPrefix).c_str(), BM_IndexRoundBookFull);
  book_full->Unit(benchmark::kMillisecond)->Arg(1);
  if (multi_threads > 1) {
    book_full->Arg(static_cast<int>(multi_threads));
  }
  benchmark::RegisterBenchmark(std::string(kSessionRunName).c_str(),
                               BM_SessionRunBookFull)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(std::string(kFusionRunName).c_str(),
                               BM_FusionRunBookFull)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(std::string(kSessionUpdateName).c_str(),
                               BM_SessionUpdateBookFull)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(std::string(kSessionLoadName).c_str(),
                               BM_SessionLoadBookFull)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      std::string(kSessionLoadMappedName).c_str(),
      BM_SessionLoadMappedBookFull)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      std::string(kShardedDetectPrefix).c_str(), BM_ShardedDetectBookCs)
      ->Unit(benchmark::kMillisecond)
      ->Arg(4);
}

/// True when the run produced no usable measurement. Google Benchmark
/// renamed Run::error_occurred to the Run::skipped enum in v1.8, so
/// probe for whichever member this library version has.
template <typename R>
bool RunSkipped(const R& run) {
  if constexpr (requires { run.error_occurred; }) {
    return run.error_occurred;
  } else {
    return run.skipped != decltype(run.skipped){};
  }
}

/// Display reporter that forwards to the --benchmark_format-selected
/// reporter while collecting every finished run into a json_reporter.h
/// document. (Passing a reporter to RunSpecifiedBenchmarks bypasses
/// the library's own format selection, so we replicate it.)
class CollectingReporter : public benchmark::BenchmarkReporter {
 public:
  CollectingReporter(bench::JsonReporter* json,
                     std::unique_ptr<benchmark::BenchmarkReporter> inner)
      : json_(json), inner_(std::move(inner)) {}

  bool ReportContext(const Context& context) override {
    inner_->SetOutputStream(&GetOutputStream());
    inner_->SetErrorStream(&GetErrorStream());
    return inner_->ReportContext(context);
  }

  void Finalize() override { inner_->Finalize(); }

  size_t skipped_runs() const { return skipped_runs_; }

  void ReportRuns(const std::vector<Run>& runs) override {
    inner_->ReportRuns(runs);
    for (const Run& run : runs) {
      if (RunSkipped(run)) {
        ++skipped_runs_;
        continue;
      }
      // Time-valued aggregate runs (mean/median/stddev under
      // --benchmark_repetitions) are recorded too — under
      // --benchmark_report_aggregates_only they are the only runs
      // reported. Their benchmark_name() carries the aggregate suffix
      // ("..._mean"), so records stay distinguishable; the detector
      // lookup uses the base name; their `iterations` is the
      // repetition count. Percentage-valued aggregates (cv) are not
      // seconds and would poison time-series consumers — skip them.
      if (run.run_type == Run::RT_Aggregate) {
        if constexpr (requires { run.aggregate_unit; }) {
          if (run.aggregate_unit ==
              benchmark::StatisticUnit::kPercentage) {
            continue;
          }
        }
      }
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      // Under --benchmark_repetitions each repetition reports under
      // the same name; tag them so records stay unique per run.
      if (run.run_type == Run::RT_Iteration && run.repetitions > 1) {
        record.name +=
            StrFormat("@rep%d", static_cast<int>(run.repetition_index));
      }
      std::string base_name = run.run_name.str();
      if (StartsWith(base_name, kDetectorPrefix)) {
        // "BM_DetectorRound/<detector>/<threads>".
        std::string rest = base_name.substr(kDetectorPrefix.size());
        size_t slash = rest.rfind('/');
        record.detector = rest.substr(0, slash);
        if (slash != std::string::npos) {
          record.threads = std::strtoull(rest.c_str() + slash + 1,
                                         nullptr, 10);
        }
        record.dataset = StrFormat("gen-%zux%zu", kDetectorSources,
                                   kDetectorItems);
        record.scale = 1.0;
      } else if (StartsWith(base_name, kBookFullPrefix)) {
        // "BM_IndexRound/book-full/<threads>".
        record.detector = "index";
        record.dataset = "book-full";
        record.scale = kBookFullScale;
        size_t slash = base_name.rfind('/');
        record.threads = std::strtoull(base_name.c_str() + slash + 1,
                                       nullptr, 10);
      } else if (StartsWith(base_name, kSessionRunName) ||
                 StartsWith(base_name, kFusionRunName) ||
                 StartsWith(base_name, kSessionUpdateName) ||
                 StartsWith(base_name, kSessionLoadName) ||
                 StartsWith(base_name, kSessionLoadMappedName)) {
        // Facade-overhead pair + online-update + warm-start anchors
        // (owned and mapped): full serial runs, same configuration.
        record.detector = "index";
        record.dataset = "book-full";
        record.scale = kBookFullScale;
        record.threads = 1;
      } else if (StartsWith(base_name, kShardedDetectPrefix)) {
        // "BM_ShardedDetect/book-cs/<shards>": one INDEX round
        // through the in-process N-shard harness, serial.
        record.detector = "sharded-index";
        record.dataset = "book-cs";
        record.scale = kBookCsScale;
        record.threads = 1;
      }
      double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      record.iterations = static_cast<uint64_t>(run.iterations);
      record.real_seconds = run.real_accumulated_time / iters;
      record.cpu_seconds = run.cpu_accumulated_time / iters;
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        record.items_per_second = items->second.value;
      }
      json_->Add(std::move(record));
    }
  }

 private:
  bench::JsonReporter* json_;
  std::unique_ptr<benchmark::BenchmarkReporter> inner_;
  size_t skipped_runs_ = 0;
};

/// The display reporter --benchmark_format would have chosen. CSV is
/// deprecated upstream and not replicated here.
std::unique_ptr<benchmark::BenchmarkReporter> MakeFormatReporter(
    std::string_view format) {
  if (format == "json") {
    return std::make_unique<benchmark::JSONReporter>();
  }
  if (format != "console") {
    std::fprintf(stderr,
                 "micro_core: unsupported --benchmark_format=%.*s, "
                 "using console\n",
                 static_cast<int>(format.size()), format.data());
  }
  return std::make_unique<benchmark::ConsoleReporter>();
}

}  // namespace
}  // namespace copydetect

int main(int argc, char** argv) {
  using copydetect::CollectingReporter;
  using copydetect::bench::JsonReporter;

  // Peel our --json=<path> / --threads=<N> off before Google Benchmark
  // (which rejects flags it does not know) sees argv, and note
  // --benchmark_format so the display side keeps honoring it.
  std::string json_path;
  std::string format = "console";
  size_t threads = 0;  // 0 = hardware concurrency
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<size_t>(
          std::strtoull(arg.data() + arg.find('=') + 1, nullptr, 10));
      continue;
    }
    if (arg.rfind("--benchmark_format=", 0) == 0) {
      format = std::string(arg.substr(arg.find('=') + 1));
    }
    argv[kept++] = argv[i];
  }
  argv[kept] = nullptr;
  argc = kept;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    // Auto-detection on a single-core runner still records a >1 point
    // so the speedup curve exists everywhere (the overhead is part of
    // the curve). An explicit --threads=1 stays serial-only.
    if (threads == 1) threads = 2;
  }

  copydetect::RegisterDetectorBenchmarks(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  JsonReporter json("micro_core");
  CollectingReporter reporter(&json,
                              copydetect::MakeFormatReporter(format));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  copydetect::bench::MaybeWriteJson(json, json_path);
  // A JSON artifact missing series (skipped/errored benchmarks) must
  // not pass CI silently.
  if (!json_path.empty() && reporter.skipped_runs() > 0) {
    std::fprintf(stderr,
                 "micro_core: %zu benchmark(s) skipped — %s is "
                 "incomplete\n",
                 reporter.skipped_runs(), json_path.c_str());
    return 4;
  }
  return 0;
}
