// Micro-benchmarks of the primitives behind the detection scan:
// hashing, pair-map updates, Bayesian scoring, index construction,
// overlap counting, NRA, and the PAIRWISE inner merge.
#include <benchmark/benchmark.h>

#include "common/flat_hash.h"
#include "common/random.h"
#include "core/bayes.h"
#include "core/inverted_index.h"
#include "core/pairwise.h"
#include "datagen/generator.h"
#include "simjoin/overlap.h"
#include "simjoin/prefix_join.h"
#include "topk/nra.h"

namespace copydetect {
namespace {

DetectionParams Params() {
  DetectionParams params;
  params.alpha = 0.1;
  params.s = 0.8;
  params.n = 50.0;
  return params;
}

World BenchWorld(size_t sources, size_t items) {
  WorldConfig config;
  config.num_sources = sources;
  config.num_items = items;
  config.false_pool = 12;
  config.coverage = {.frac_small = 0.3,
                     .small_lo = 0.05,
                     .small_hi = 0.3,
                     .big_lo = 0.4,
                     .big_hi = 0.9};
  config.copying.num_groups = sources / 10;
  auto world = GenerateWorld(config, 42);
  CD_CHECK_OK(world.status());
  return std::move(world).value();
}

struct WorldInputs {
  World world;
  std::vector<double> probs;
  std::vector<double> accs;

  WorldInputs(size_t sources, size_t items)
      : world(BenchWorld(sources, items)) {
    const Dataset& data = world.data;
    probs.assign(data.num_slots(), 0.0);
    for (ItemId d = 0; d < data.num_items(); ++d) {
      double total = static_cast<double>(data.item_providers(d).size());
      for (SlotId v = data.slot_begin(d); v < data.slot_end(d); ++v) {
        probs[v] = total == 0.0
                       ? 0.0
                       : 0.9 * static_cast<double>(
                                   data.providers(v).size()) /
                             total;
      }
    }
    accs = world.true_accuracy;
  }

  DetectionInput Input() const {
    DetectionInput in;
    in.data = &world.data;
    in.value_probs = &probs;
    in.accuracies = &accs;
    return in;
  }
};

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_FlatHashMapUpsert(benchmark::State& state) {
  const size_t keys = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<uint64_t> sequence(1 << 14);
  for (uint64_t& k : sequence) k = rng.NextBelow(keys);
  FlatHashMap<double> map;
  map.Reserve(keys);
  size_t i = 0;
  for (auto _ : state) {
    map[sequence[i & (sequence.size() - 1)]] += 1.0;
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatHashMapUpsert)->Arg(1 << 10)->Arg(1 << 16);

void BM_SharedContribution(benchmark::State& state) {
  DetectionParams params = Params();
  double p = 0.05;
  for (auto _ : state) {
    double c = SharedContribution(p, 0.8, 0.3, params);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SharedContribution);

void BM_MaxEntryContribution(benchmark::State& state) {
  DetectionParams params = Params();
  std::vector<double> accs(static_cast<size_t>(state.range(0)));
  Rng rng(9);
  for (double& a : accs) a = rng.UniformDouble(0.05, 0.95);
  for (auto _ : state) {
    double c = MaxEntryContribution(accs, 0.05, params);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MaxEntryContribution)->Arg(2)->Arg(8)->Arg(64);

void BM_NoCopyPosterior(benchmark::State& state) {
  DetectionParams params = Params();
  for (auto _ : state) {
    double p = NoCopyPosterior(3.4, 2.1, params);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_NoCopyPosterior);

void BM_IndexBuild(benchmark::State& state) {
  WorldInputs inputs(64, static_cast<size_t>(state.range(0)));
  DetectionParams params = Params();
  for (auto _ : state) {
    auto index = InvertedIndex::Build(inputs.Input(), params);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(inputs.world.data.num_slots()));
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

void BM_OverlapCounting(benchmark::State& state) {
  WorldInputs inputs(64, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    OverlapCounts counts = ComputeOverlaps(inputs.world.data);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_OverlapCounting)->Arg(1000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

void BM_PrefixJoin(benchmark::State& state) {
  WorldInputs inputs(128, 2000);
  for (auto _ : state) {
    auto pairs = PrefixFilterJoin(inputs.world.data, 16);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_PrefixJoin)->Unit(benchmark::kMillisecond);

void BM_PairMerge(benchmark::State& state) {
  WorldInputs inputs(64, 4000);
  DetectionParams params = Params();
  DetectionInput in = inputs.Input();
  Counters counters;
  SourceId a = 0;
  SourceId b = 1;
  for (auto _ : state) {
    PairScores scores = ComputePairScores(in, a, b, params, &counters);
    benchmark::DoNotOptimize(scores);
    b = static_cast<SourceId>((b + 1) % 64);
    if (b == a) b = static_cast<SourceId>(a + 1);
  }
}
BENCHMARK(BM_PairMerge);

void BM_NraTopK(benchmark::State& state) {
  Rng rng(21);
  std::vector<NraList> lists(8);
  for (NraList& list : lists) {
    for (uint64_t id = 0; id < 2000; ++id) {
      if (rng.Bernoulli(0.5)) {
        list.entries.emplace_back(id, rng.UniformDouble(0.0, 10.0));
      }
    }
    std::sort(list.entries.begin(), list.entries.end(),
              [](const auto& x, const auto& y) {
                return x.second > y.second;
              });
  }
  for (auto _ : state) {
    NraResult result = NraTopK(lists, 10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NraTopK)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace copydetect

BENCHMARK_MAIN();
