#ifndef COPYDETECT_BENCH_BENCH_UTIL_H_
#define COPYDETECT_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the table/figure reproduction harnesses.
//
// Every harness runs with no arguments at a scale that finishes in
// seconds-to-minutes on a laptop and accepts --scale=<f> / --seed=<k>
// to move toward the paper's full sizes. Absolute numbers differ from
// the paper (C++ vs Java, synthetic vs crawled data, smaller default
// scale); the *shapes* — who wins, by what order of magnitude — are
// the reproduction target. See EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "copydetect/session.h"
#include "json_reporter.h"

namespace copydetect {
namespace bench {

struct BenchDataset {
  std::string name;
  double scale;  // relative to the paper's full size
};

/// The four evaluation data sets at bench-default scales. `scale`
/// multiplies each data set's default.
inline std::vector<BenchDataset> DefaultDatasets(double scale) {
  return {
      {"book-cs", 0.5 * scale},
      {"stock-1day", 0.2 * scale},
      {"book-full", 0.05 * scale},
      {"stock-2wk", 0.04 * scale},
  };
}

/// The two small data sets the paper uses for quality tables.
inline std::vector<BenchDataset> QualityDatasets(double scale) {
  return {
      {"book-cs", 0.5 * scale},
      {"stock-1day", 0.2 * scale},
  };
}

/// Standard fusion options for a generated world: the paper's alpha
/// and s, with n matched to the generator's false pool.
inline FusionOptions OptionsFor(const World& world, int max_rounds = 8) {
  FusionOptions options;
  options.params.alpha = 0.1;
  options.params.s = 0.8;
  options.params.n = world.suggested_n;
  options.max_rounds = max_rounds;
  options.epsilon = 1e-4;
  return options;
}

/// The same standard configuration as one facade SessionOptions —
/// the setup path for harnesses driving the pipeline through
/// copydetect/session.h.
inline SessionOptions SessionOptionsFor(const World& world,
                                        int max_rounds = 8) {
  SessionOptions options;
  options.alpha = 0.1;
  options.s = 0.8;
  options.n = world.suggested_n;
  options.max_rounds = max_rounds;
  options.epsilon = 1e-4;
  return options;
}

/// Generates a bench world, dying on error.
inline World MakeWorld(const BenchDataset& spec, uint64_t seed) {
  auto world = MakeWorldByName(spec.name, spec.scale, seed);
  CD_CHECK_OK(world.status());
  return std::move(world).value();
}

inline std::string Fmt(double v, const char* fmt = "%.3f") {
  return StrFormat(fmt, v);
}

inline std::string Millions(uint64_t n) {
  return StrFormat("%.3f", static_cast<double>(n) / 1e6);
}

/// Percent improvement of `now` over `before` ("99.5%").
inline std::string Improvement(double before, double now) {
  if (before <= 0.0) return "-";
  double frac = 1.0 - now / before;
  return StrFormat("%.1f%%", frac * 100.0);
}

/// Registers the shared --json=<path> flag on a harness's FlagSet
/// (harnesses opt in by calling this before ParseOrDie). Empty (the
/// default) means human-readable output only.
inline void JsonFlag(FlagSet& flags, std::string* path) {
  flags.String("json", path, "write BENCH JSON records here");
}

/// Writes `reporter` to `path` when --json was given; exits non-zero
/// on IO failure or when nothing was measured, so CI catches a
/// missing or hollow perf artifact.
inline void MaybeWriteJson(const JsonReporter& reporter,
                           const std::string& path) {
  if (path.empty()) return;
  if (reporter.empty()) {
    std::fprintf(stderr,
                 "json_reporter: no records measured — refusing to "
                 "write %s\n",
                 path.c_str());
    std::exit(4);
  }
  if (!reporter.WriteFile(path)) std::exit(3);
  // stderr so machine-readable stdout (--benchmark_format=json on
  // micro_core) stays parseable.
  std::fprintf(stderr, "wrote %zu records to %s\n", reporter.size(),
               path.c_str());
}

}  // namespace bench
}  // namespace copydetect

#endif  // COPYDETECT_BENCH_BENCH_UTIL_H_
