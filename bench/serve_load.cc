// Serving-layer load driver: sustained mixed read/update throughput
// against one SessionManager session, the concurrency shape copydetectd
// serves (ROADMAP "concurrent serving" exit criterion).
//
// N reader threads hammer SessionRef::report() (the lock-free RCU
// load) while M writer threads push small DatasetDelta batches through
// the session's single-writer queue, for a fixed wall-clock window.
// Per-operation latencies are recorded and reported as p50/p99
// alongside throughput — one BENCH record per operation kind
// (schema_version 3 adds the percentile fields):
//
//   ./serve_load --readers=4 --writers=2 --seconds=2
//       --json=BENCH_serve.json
//
// The driver runs the manager in-process rather than through the
// socket: the wire layer is one read()/write() per request and would
// measure the kernel, not the serving data structures under test.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "copydetect/session_manager.h"

using namespace copydetect;
using namespace copydetect::bench;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Percentile by rank over an unsorted latency vector (nth_element —
/// the vectors run to millions of entries for readers).
double Percentile(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(
                                            latencies.size() - 1));
  std::nth_element(latencies.begin(), latencies.begin() + rank,
                   latencies.end());
  return latencies[rank];
}

struct OpStats {
  std::vector<double> latencies;
  uint64_t ops = 0;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t readers = 4;
  uint64_t writers = 2;
  double seconds = 2.0;
  std::string dataset = "book-cs";
  double scale = 0.1;
  uint64_t seed = 7;
  std::string detector = "index";
  std::string json_path;
  FlagSet flags(
      "serve_load: mixed read/update load on one managed session");
  flags.Uint64("readers", &readers,
               "threads calling report() in a loop");
  flags.Uint64("writers", &writers,
               "threads applying Update batches in a loop");
  flags.Double("seconds", &seconds, "measurement window length");
  flags.String("dataset", &dataset, "bench data-set name");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.String("detector", &detector, "detector registry name");
  JsonFlag(flags, &json_path);
  flags.ParseOrDie(argc, argv);

  World world = MakeWorld({dataset, scale}, seed);
  SessionOptions session_options = SessionOptionsFor(world);
  session_options.detector = detector;

  SessionManagerOptions manager_options;
  auto manager = SessionManager::Start(manager_options);
  CD_CHECK_OK(manager.status());
  auto ref = (*manager)->Open("load", session_options, world.data);
  CD_CHECK_OK(ref.status());

  const size_t total_threads =
      static_cast<size_t>(readers + writers);
  std::printf("serve_load: %s scale %.2f, %llu readers + %llu writers "
              "for %.1fs\n",
              dataset.c_str(), scale,
              static_cast<unsigned long long>(readers),
              static_cast<unsigned long long>(writers), seconds);

  std::atomic<bool> stop{false};
  std::vector<OpStats> reader_stats(readers);
  std::vector<OpStats> writer_stats(writers);
  std::vector<std::thread> threads;

  for (uint64_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      OpStats& stats = reader_stats[r];
      // Reader ops are tens of nanoseconds; sampling every op would
      // time the clock, not the load. Record 1 in 64, count all.
      uint64_t sample = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if ((sample++ & 63) == 0) {
          auto begin = Clock::now();
          auto snap = ref->report();
          stats.latencies.push_back(Seconds(Clock::now() - begin));
          if (snap == nullptr) break;  // unreachable; keeps snap live
        } else {
          auto snap = ref->report();
          if (snap == nullptr) break;
        }
        ++stats.ops;
      }
    });
  }
  for (uint64_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      OpStats& stats = writer_stats[w];
      uint64_t batch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        DatasetDelta delta;
        // Each writer cycles assertions from its own source over a
        // small item set — steady overwrite churn, bounded growth.
        const std::string source =
            "load_src_" + std::to_string(w);
        delta.Set(source, "load_item_" + std::to_string(batch % 8),
                  std::to_string(batch % 5));
        ++batch;
        auto begin = Clock::now();
        Status applied = ref->Update(delta);
        stats.latencies.push_back(Seconds(Clock::now() - begin));
        CD_CHECK_OK(applied);
        ++stats.ops;
      }
    });
  }

  auto window_begin = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed = Seconds(Clock::now() - window_begin);

  JsonReporter reporter("serve_load");
  auto report_kind = [&](const char* kind,
                         std::vector<OpStats>& per_thread,
                         uint64_t thread_count) {
    std::vector<double> latencies;
    uint64_t ops = 0;
    double measured_seconds = 0.0;
    for (OpStats& stats : per_thread) {
      ops += stats.ops;
      for (double l : stats.latencies) measured_seconds += l;
      latencies.insert(latencies.end(), stats.latencies.begin(),
                       stats.latencies.end());
    }
    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    const double throughput =
        elapsed > 0.0 ? static_cast<double>(ops) / elapsed : 0.0;
    std::printf("  %-7s %12llu ops  %12.0f ops/s  p50 %s  p99 %s\n",
                kind, static_cast<unsigned long long>(ops), throughput,
                HumanSeconds(p50).c_str(), HumanSeconds(p99).c_str());
    BenchRecord record;
    record.name = std::string("serve_load/") + kind;
    record.detector = detector;
    record.dataset = dataset;
    record.scale = scale;
    // Mean latency over the *sampled* ops; total thread-seconds spent
    // inside sampled calls as the cpu proxy.
    record.real_seconds = latencies.empty()
                              ? 0.0
                              : measured_seconds /
                                    static_cast<double>(latencies.size());
    record.cpu_seconds = measured_seconds;
    record.iterations = ops;
    record.items_per_second = throughput;
    record.threads = thread_count;
    record.p50_seconds = p50;
    record.p99_seconds = p99;
    reporter.Add(record);
  };
  report_kind("query", reader_stats, readers);
  report_kind("update", writer_stats, writers);

  const auto final_snap = ref->report();
  std::printf("  final report version %llu (%zu client threads)\n",
              static_cast<unsigned long long>(final_snap->version),
              total_threads);
  if (final_snap->version == 0 && writers > 0) {
    std::fprintf(stderr, "serve_load: no update ever applied\n");
    return 1;
  }

  MaybeWriteJson(reporter, json_path);
  (*manager)->Shutdown();
  return 0;
}
