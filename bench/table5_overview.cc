// Table V: overview of the (synthetic stand-ins for the) data sets.
//
// Prints #sources, #items, #distinct values and #index entries per
// data set next to the paper's full-scale numbers, plus the shape
// diagnostics the generator is calibrated against (coverage mix,
// conflicting values per item).
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("table5_overview: Table V data-set overview");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  struct PaperRow {
    const char* name;
    const char* srcs;
    const char* items;
    const char* dist;
    const char* entries;
  };
  static constexpr PaperRow kPaper[] = {
      {"book-cs", "894", "2,528", "14,930", "7,398"},
      {"stock-1day", "55", "16,000", "104,611", "40,834"},
      {"book-full", "3,182", "147,431", "162,961", "48,683"},
      {"stock-2wk", "55", "160,000", "915,118", "405,537"},
  };

  TextTable table;
  table.SetHeader({"Dataset", "scale", "#Srcs", "#Items", "#Dist-values",
                   "#Index-entries", "vals/item", "low-cov", "high-cov"});
  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    DatasetStats st = ComputeStats(world.data);
    table.AddRow({spec.name, Fmt(spec.scale, "%.3f"),
                  WithCommas(st.num_sources), WithCommas(st.num_items),
                  WithCommas(st.num_distinct_values),
                  WithCommas(st.num_index_entries),
                  Fmt(st.avg_values_per_item, "%.2f"),
                  Fmt(st.frac_low_coverage_sources * 100.0, "%.0f%%"),
                  Fmt(st.frac_high_coverage_sources * 100.0, "%.0f%%")});
  }
  std::printf("%s\n",
              table.Render("Table V — data set overview (measured)")
                  .c_str());

  TextTable paper;
  paper.SetHeader(
      {"Dataset", "#Srcs", "#Items", "#Dist-values", "#Index-entries"});
  for (const PaperRow& row : kPaper) {
    paper.AddRow({row.name, row.srcs, row.items, row.dist, row.entries});
  }
  std::printf(
      "%s\n", paper.Render("Table V — paper, full scale (reference)")
                  .c_str());
  std::printf("Shape targets: Book-CS ~5.9 values/item with 85%% "
              "low-coverage sources; Stock ~6.5 values/item with 80%% "
              "high-coverage sources; Book-full ~1.1 values/item.\n");
  return 0;
}
