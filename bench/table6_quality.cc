// Table VI: copy-detection and truth-discovery quality of the methods,
// all measured against PAIRWISE (the paper's reference), on Book-CS and
// Stock-1day stand-ins.
//
// Columns: detection precision / recall / F vs PAIRWISE; fusion
// accuracy on the gold standard; fusion difference and accuracy
// variance vs PAIRWISE.
#include <memory>

#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

namespace {

struct MethodResult {
  std::string name;
  RunOutcome outcome;
};

void PrintQualityReport(const World& world, const std::string& dataset,
            const std::vector<MethodResult>& methods,
            const RunOutcome& reference) {
  TextTable table;
  table.SetHeader({"Method", "Prec", "Rec", "F-msr", "Accu",
                   "Fusion diff", "Accu var"});
  double ref_acc =
      world.gold.Accuracy(world.data, reference.fusion.truth);
  table.AddRow({"pairwise", "-", "-", "-", Fmt(ref_acc), "-", "-"});
  for (const MethodResult& m : methods) {
    PrfScores prf =
        ComparePairs(m.outcome.fusion.copies, reference.fusion.copies);
    table.AddRow(
        {m.name, Fmt(prf.precision), Fmt(prf.recall), Fmt(prf.f1),
         Fmt(world.gold.Accuracy(world.data, m.outcome.fusion.truth)),
         Fmt(FusionDifference(world.data, m.outcome.fusion.truth,
                              reference.fusion.truth)),
         Fmt(AccuracyVariance(m.outcome.fusion.accuracies,
                              reference.fusion.accuracies), "%.4f")});
  }
  std::printf("%s\n",
              table.Render("Table VI — " + dataset).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("table6_quality: Table VI detection/fusion quality");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  for (const BenchDataset& spec : QualityDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);
    double rate = DefaultSamplingRate(spec.name);

    auto reference = RunFusion(world, DetectorKind::kPairwise, options);
    CD_CHECK_OK(reference.status());

    std::vector<MethodResult> methods;
    auto run_kind = [&](const std::string& name, DetectorKind kind) {
      auto outcome = RunFusion(world, kind, options);
      CD_CHECK_OK(outcome.status());
      methods.push_back({name, std::move(outcome).value()});
    };
    auto run_sampled = [&](const std::string& name, DetectorKind base,
                           SamplingMethod method, double r) {
      auto detector =
          MakeSampledDetector(options.params, base, method, r, seed);
      auto outcome =
          RunFusionWithDetector(world, detector.get(), options);
      CD_CHECK_OK(outcome.status());
      methods.push_back({name, std::move(outcome).value()});
    };

    // SAMPLE1/SAMPLE2: naive sampling + PAIRWISE (§VI-A).
    run_sampled("sample1 (by-item)", DetectorKind::kPairwise,
                SamplingMethod::kByItem, rate);
    run_sampled("sample2 (by-cell)", DetectorKind::kPairwise,
                SamplingMethod::kByCell,
                spec.name == "stock-1day" ? rate : rate * 3.0);
    run_kind("index", DetectorKind::kIndex);
    run_kind("hybrid", DetectorKind::kHybrid);
    run_kind("incremental", DetectorKind::kIncremental);
    run_sampled("scalesample", DetectorKind::kIncremental,
                SamplingMethod::kScaleSample, rate);

    PrintQualityReport(world, spec.name + StrFormat(" (scale %.2f)", spec.scale),
           methods, *reference);
  }
  std::printf(
      "Paper reference (Table VI): INDEX = exact match to PAIRWISE "
      "(P=R=F=1, diff=0); HYBRID/INCREMENTAL F >= .97 with tiny fusion "
      "differences; SCALESAMPLE F ~ .88/.95; naive sampling far worse "
      "on Book-CS (F ~ .26-.78).\n");
  return 0;
}
