// Table IX: SCALESAMPLE against the naive BYITEM / BYCELL strategies
// at matched effective rates, detection quality vs INDEX (the paper's
// baseline for this table), with INCREMENTAL under every sample.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("table9_sampling: Table IX sampling strategies");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  TextTable table;
  table.SetHeader({"Dataset", "Method", "items kept", "cells kept",
                   "Prec", "Rec", "F-msr"});

  for (const BenchDataset& spec : QualityDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);
    double rate = DefaultSamplingRate(spec.name);

    auto reference = RunFusion(world, DetectorKind::kIndex, options);
    CD_CHECK_OK(reference.status());

    // SCALESAMPLE first: its achieved item/cell fractions set the
    // rates for the naive strategies (the paper's fairness rule).
    SampleSpec scale_spec;
    scale_spec.method = SamplingMethod::kScaleSample;
    scale_spec.rate = rate;
    scale_spec.seed = seed;
    auto probe = SampleDataset(world.data, scale_spec);
    CD_CHECK_OK(probe.status());
    double item_fraction = probe->item_fraction;
    double cell_fraction = probe->cell_fraction;

    struct Entry {
      const char* name;
      SamplingMethod method;
      double r;
    };
    const Entry entries[] = {
        {"scalesample", SamplingMethod::kScaleSample, rate},
        {"by-item", SamplingMethod::kByItem, item_fraction},
        {"by-cell", SamplingMethod::kByCell, cell_fraction},
    };
    for (const Entry& e : entries) {
      auto detector = MakeSampledDetector(
          options.params, DetectorKind::kIncremental, e.method, e.r,
          seed);
      auto outcome =
          RunFusionWithDetector(world, detector.get(), options);
      CD_CHECK_OK(outcome.status());
      auto* sampled = dynamic_cast<SampledDetector*>(detector.get());
      PrfScores prf = ComparePairs(outcome->fusion.copies,
                                   reference->fusion.copies);
      table.AddRow(
          {spec.name, e.name,
           Fmt(sampled->sample()->item_fraction * 100.0, "%.0f%%"),
           Fmt(sampled->sample()->cell_fraction * 100.0, "%.0f%%"),
           Fmt(prf.precision), Fmt(prf.recall), Fmt(prf.f1)});
    }
  }
  std::printf("%s\n",
              table.Render("Table IX — sampling strategies "
                           "(quality vs INDEX)")
                  .c_str());
  std::printf(
      "Paper reference: on Book-CS SCALESAMPLE F=.88 beats BYITEM .67 "
      "and BYCELL .78; on Stock-1day all three tie (F=.96) because "
      "every source has high coverage.\n");
  return 0;
}
