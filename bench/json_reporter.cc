#include "json_reporter.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/stringutil.h"

namespace copydetect {
namespace bench {
namespace {

// JSON has no NaN/Inf literals; non-finite measurements degrade to 0.
std::string Num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  return StrFormat("%.9g", v);
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonReporter::JsonReporter(std::string benchmark_name)
    : benchmark_name_(std::move(benchmark_name)) {}

void JsonReporter::Add(BenchRecord record) {
  records_.push_back(std::move(record));
}

std::string JsonReporter::ToJson() const {
  std::string out;
  out += "{\n";
  out += StrFormat("  \"benchmark\": \"%s\",\n",
                   JsonEscape(benchmark_name_).c_str());
  out += "  \"schema_version\": 3,\n";
  out += "  \"records\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"name\": \"%s\", \"detector\": \"%s\", "
        "\"dataset\": \"%s\", \"scale\": %s, \"real_seconds\": %s, "
        "\"cpu_seconds\": %s, \"iterations\": %llu, "
        "\"items_per_second\": %s, \"threads\": %llu, "
        "\"p50_seconds\": %s, \"p99_seconds\": %s}",
        JsonEscape(r.name).c_str(), JsonEscape(r.detector).c_str(),
        JsonEscape(r.dataset).c_str(), Num(r.scale).c_str(),
        Num(r.real_seconds).c_str(), Num(r.cpu_seconds).c_str(),
        static_cast<unsigned long long>(r.iterations),
        Num(r.items_per_second).c_str(),
        static_cast<unsigned long long>(r.threads),
        Num(r.p50_seconds).c_str(), Num(r.p99_seconds).c_str());
  }
  out += records_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

bool WriteDocument(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "json_reporter: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool closed = std::fclose(f) == 0;
  bool ok = written == doc.size() && closed;
  if (!ok) {
    std::fprintf(stderr, "json_reporter: short write to %s\n",
                 path.c_str());
  }
  return ok;
}

}  // namespace

bool JsonReporter::WriteFile(const std::string& path) const {
  return WriteDocument(path, ToJson());
}

QualityReporter::QualityReporter(std::string benchmark_name)
    : benchmark_name_(std::move(benchmark_name)) {}

void QualityReporter::Add(QualityRecord record) {
  records_.push_back(std::move(record));
}

std::string QualityReporter::ToJson() const {
  std::string out;
  out += "{\n";
  out += StrFormat("  \"benchmark\": \"%s\",\n",
                   JsonEscape(benchmark_name_).c_str());
  out += "  \"schema_version\": 1,\n";
  out += "  \"records\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    const QualityRecord& r = records_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"scenario\": \"%s\", \"detector\": \"%s\", "
        "\"scale\": %s, \"precision\": %s, \"recall\": %s, "
        "\"f1\": %s, \"fusion_accuracy\": %s, \"output_pairs\": %llu, "
        "\"reference_pairs\": %llu}",
        JsonEscape(r.scenario).c_str(), JsonEscape(r.detector).c_str(),
        Num(r.scale).c_str(), Num(r.precision).c_str(),
        Num(r.recall).c_str(), Num(r.f1).c_str(),
        Num(r.fusion_accuracy).c_str(),
        static_cast<unsigned long long>(r.output_pairs),
        static_cast<unsigned long long>(r.reference_pairs));
  }
  out += records_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool QualityReporter::WriteFile(const std::string& path) const {
  return WriteDocument(path, ToJson());
}

}  // namespace bench
}  // namespace copydetect
