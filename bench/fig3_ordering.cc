// Figure 3: effect of the index processing order — BYPROVIDER and
// BYCONTRIBUTION as a time ratio against RANDOM ordering, under BOUND
// and under HYBRID.
#include "core/bound.h"   // cd-lint: allow(layering) white-box ordering bench (docs/API.md exemption)
#include "core/hybrid.h"  // cd-lint: allow(layering) white-box ordering bench (docs/API.md exemption)

#include "bench_util.h"
#include "fusion/truth_finder.h"  // cd-lint: allow(layering) white-box ordering bench (docs/API.md exemption)

using namespace copydetect;
using namespace copydetect::bench;

namespace {

double RunWithOrdering(const World& world, const FusionOptions& options,
                       bool hybrid, EntryOrdering ordering,
                       uint64_t seed) {
  std::unique_ptr<CopyDetector> detector;
  if (hybrid) {
    detector = std::make_unique<HybridDetector>(options.params, ordering,
                                                seed);
  } else {
    detector = std::make_unique<BoundDetector>(options.params,
                                               /*lazy=*/false, ordering,
                                               seed);
  }
  auto outcome = RunFusionWithDetector(world, detector.get(), options);
  CD_CHECK_OK(outcome.status());
  return outcome->fusion.detect_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("fig3_ordering: Figure 3 index processing order");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  for (bool hybrid : {false, true}) {
    TextTable table;
    table.SetHeader({"Dataset", "random", "by-provider",
                     "by-contribution", "provider/random",
                     "contribution/random"});
    for (const BenchDataset& spec : DefaultDatasets(scale)) {
      World world = MakeWorld(spec, seed);
      FusionOptions options = OptionsFor(world);
      double random =
          RunWithOrdering(world, options, hybrid,
                          EntryOrdering::kRandom, seed);
      double provider =
          RunWithOrdering(world, options, hybrid,
                          EntryOrdering::kByProvider, seed);
      double contribution =
          RunWithOrdering(world, options, hybrid,
                          EntryOrdering::kByContribution, seed);
      table.AddRow({spec.name, HumanSeconds(random),
                    HumanSeconds(provider), HumanSeconds(contribution),
                    Fmt(provider / random, "%.2f"),
                    Fmt(contribution / random, "%.2f")});
    }
    std::printf("%s\n",
                table
                    .Render(std::string("Figure 3 — ordering vs random, "
                                        "under ") +
                            (hybrid ? "HYBRID" : "BOUND"))
                    .c_str());
  }
  std::printf(
      "Paper reference: BYCONTRIBUTION is fastest (12%% under BOUND, "
      "smaller but still ahead under HYBRID); BYPROVIDER sits between "
      "it and RANDOM.\n");
  return 0;
}
