// Table X: execution-time ratio of HYBRID and INCREMENTAL relative to
// FAGININPUT — the NRA baseline whose *input generation alone* already
// costs a full scan per round.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("table10_fagin: Table X FAGININPUT ratios");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  TextTable table;
  table.SetHeader({"Dataset", "fagin-input", "hybrid", "incremental",
                   "hybrid/fagin", "incremental/fagin"});

  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);

    auto run = [&](DetectorKind kind) {
      auto outcome = RunFusion(world, kind, options);
      CD_CHECK_OK(outcome.status());
      return outcome->fusion.detect_seconds;
    };
    double fagin = run(DetectorKind::kFaginInput);
    double hybrid = run(DetectorKind::kHybrid);
    double incremental = run(DetectorKind::kIncremental);

    table.AddRow({spec.name, HumanSeconds(fagin), HumanSeconds(hybrid),
                  HumanSeconds(incremental),
                  Fmt(hybrid / fagin, "%.2f"),
                  Fmt(incremental / fagin, "%.2f")});
  }
  std::printf(
      "%s\n",
      table.Render("Table X — execution-time ratio w.r.t. FAGININPUT")
          .c_str());
  std::printf(
      "Paper reference: HYBRID/FAGININPUT = .67-.99 (HYBRID ~18%% "
      "faster per round on average); INCREMENTAL/FAGININPUT = .19-.30 "
      "(~75%% faster over all rounds).\n");
  return 0;
}
