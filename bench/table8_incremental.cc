// Table VIII: per-round execution-time ratio of INCREMENTAL vs HYBRID,
// and the percentage of pairs terminating at each incremental pass —
// both runs through the Session facade, whose Report surfaces the
// incremental pass statistics.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  uint64_t seed = flags.GetUint64("seed", 7);
  flags.Finish();

  TextTable ratio;
  ratio.SetHeader(
      {"Dataset", "Round", "hybrid", "incremental", "ratio"});
  TextTable passes;
  passes.SetHeader({"Dataset", "Pass 1", "Pass 2", "Pass 3 (+exact)"});

  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    SessionOptions options = SessionOptionsFor(world, /*max_rounds=*/8);
    options.epsilon = 1e-6;  // keep iterating so rounds 3+ exist

    options.detector = "hybrid";
    auto hybrid_session = Session::Create(options);
    CD_CHECK_OK(hybrid_session.status());
    auto hybrid_run = hybrid_session->Run(world.data);
    CD_CHECK_OK(hybrid_run.status());

    options.detector = "incremental";
    auto incremental_session = Session::Create(options);
    CD_CHECK_OK(incremental_session.status());
    auto incremental_run = incremental_session->Run(world.data);
    CD_CHECK_OK(incremental_run.status());

    const auto& stats = incremental_run->incremental_rounds;
    uint64_t pass1 = 0;
    uint64_t pass2 = 0;
    uint64_t pass3 = 0;
    size_t rounds =
        std::min(stats.size(), hybrid_run->fusion.trace.size());
    for (size_t i = 2; i < rounds; ++i) {
      double h = hybrid_run->fusion.trace[i].detect_seconds;
      ratio.AddRow({spec.name, StrFormat("%d", stats[i].round),
                    HumanSeconds(h), HumanSeconds(stats[i].seconds),
                    h > 0 ? Fmt(100.0 * stats[i].seconds / h, "%.1f%%")
                          : "-"});
      pass1 += stats[i].pass1;
      pass2 += stats[i].pass2;
      pass3 += stats[i].pass3 + stats[i].exact;
    }
    uint64_t total = pass1 + pass2 + pass3;
    if (total > 0) {
      passes.AddRow(
          {spec.name,
           Fmt(100.0 * static_cast<double>(pass1) /
               static_cast<double>(total), "%.1f%%"),
           Fmt(100.0 * static_cast<double>(pass2) /
               static_cast<double>(total), "%.1f%%"),
           Fmt(100.0 * static_cast<double>(pass3) /
               static_cast<double>(total), "%.1f%%")});
    }
  }
  std::printf(
      "%s\n",
      ratio
          .Render("Table VIII (top) — INCREMENTAL vs HYBRID per round "
                  "(rounds >= 3)")
          .c_str());
  std::printf(
      "%s\n",
      passes
          .Render(
              "Table VIII (bottom) — %% pairs terminating per pass")
          .c_str());
  std::printf(
      "Paper reference: per-round ratio 3-14%%; pass 1 terminates "
      ">= 86%% of pairs (98-99%% on three of four data sets).\n");
  return 0;
}
