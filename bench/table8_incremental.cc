// Table VIII: per-round execution-time ratio of INCREMENTAL vs HYBRID,
// and the percentage of pairs terminating at each incremental pass —
// both runs through the Session facade, whose Report surfaces the
// incremental pass statistics.
//
// The harness also measures the *online* incremental axis the paper
// motivates ("data sources often refresh their data"): a small
// DatasetDelta pushed through Session::Update versus rebuilding the
// merged data set from scratch and re-running cold. Both paths are
// bit-identical by construction (tests/session_update_test.cc); the
// table and the --json records capture the speedup.
#include <algorithm>
#include <string>

#include "bench_util.h"
#include "common/timer.h"

using namespace copydetect;
using namespace copydetect::bench;

namespace {

/// A small feed push: the widest-coverage source re-publishes ~2% of
/// its items (at least 4) with brand-new values — the paper's
/// daily-feed scenario. Sets only, so the same delta can be
/// re-applied for the best-of-3 timing reps (a retraction would fail
/// on the second application).
DatasetDelta SmallFeedDelta(const Dataset& data) {
  DatasetDelta delta;
  SourceId feed = 0;
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    if (data.coverage(s) > data.coverage(feed)) feed = s;
  }
  std::span<const ItemId> items = data.items_of(feed);
  size_t n = std::max<size_t>(4, items.size() / 50);
  for (size_t i = 0; i < items.size() && i < n; ++i) {
    delta.Set(data.source_name(feed), data.item_name(items[i]),
              "feed-" + std::to_string(i));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  std::string json_path;
  FlagSet flags("table8_incremental: Table VIII INCREMENTAL vs HYBRID");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  JsonFlag(flags, &json_path);
  flags.ParseOrDie(argc, argv);

  JsonReporter reporter("table8_incremental");

  TextTable ratio;
  ratio.SetHeader(
      {"Dataset", "Round", "hybrid", "incremental", "ratio"});
  TextTable passes;
  passes.SetHeader({"Dataset", "Pass 1", "Pass 2", "Pass 3 (+exact)"});

  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    SessionOptions options = SessionOptionsFor(world, /*max_rounds=*/8);
    options.epsilon = 1e-6;  // keep iterating so rounds 3+ exist

    options.detector = "hybrid";
    auto hybrid_session = Session::Create(options);
    CD_CHECK_OK(hybrid_session.status());
    auto hybrid_run = hybrid_session->Run(world.data);
    CD_CHECK_OK(hybrid_run.status());

    options.detector = "incremental";
    auto incremental_session = Session::Create(options);
    CD_CHECK_OK(incremental_session.status());
    auto incremental_run = incremental_session->Run(world.data);
    CD_CHECK_OK(incremental_run.status());

    const auto& stats = incremental_run->incremental_rounds;
    uint64_t pass1 = 0;
    uint64_t pass2 = 0;
    uint64_t pass3 = 0;
    size_t rounds =
        std::min(stats.size(), hybrid_run->fusion.trace.size());
    for (size_t i = 2; i < rounds; ++i) {
      double h = hybrid_run->fusion.trace[i].detect_seconds;
      ratio.AddRow({spec.name, StrFormat("%d", stats[i].round),
                    HumanSeconds(h), HumanSeconds(stats[i].seconds),
                    h > 0 ? Fmt(100.0 * stats[i].seconds / h, "%.1f%%")
                          : "-"});
      pass1 += stats[i].pass1;
      pass2 += stats[i].pass2;
      pass3 += stats[i].pass3 + stats[i].exact;
    }
    uint64_t total = pass1 + pass2 + pass3;
    if (total > 0) {
      passes.AddRow(
          {spec.name,
           Fmt(100.0 * static_cast<double>(pass1) /
               static_cast<double>(total), "%.1f%%"),
           Fmt(100.0 * static_cast<double>(pass2) /
               static_cast<double>(total), "%.1f%%"),
           Fmt(100.0 * static_cast<double>(pass3) /
               static_cast<double>(total), "%.1f%%")});
    }
  }
  std::printf(
      "%s\n",
      ratio
          .Render("Table VIII (top) — INCREMENTAL vs HYBRID per round "
                  "(rounds >= 3)")
          .c_str());
  std::printf(
      "%s\n",
      passes
          .Render(
              "Table VIII (bottom) — %% pairs terminating per pass")
          .c_str());
  std::printf(
      "Paper reference: per-round ratio 3-14%%; pass 1 terminates "
      ">= 86%% of pairs (98-99%% on three of four data sets).\n");

  // --- Online updates: Session::Update vs full rebuild + re-run. ---
  TextTable online;
  online.SetHeader({"Dataset", "Detector", "update", "rebuild",
                    "speedup", "reused pairs"});
  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    const Dataset& base = world.data;
    DatasetDelta delta = SmallFeedDelta(base);
    for (const char* detector : {"index", "pairwise"}) {
      SessionOptions options = SessionOptionsFor(world, /*max_rounds=*/8);
      options.detector = detector;
      options.online_updates = true;
      auto session = Session::Create(options);
      CD_CHECK_OK(session.status());
      CD_CHECK_OK(session->Run(base).status());

      // Best of 3: the first Update changes the values, the repeats
      // re-push the same feed — steady state either way.
      double update_seconds = 0.0;
      double update_cpu = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        double cpu0 = ProcessCpuSeconds();
        double secs = Stopwatch::Time(
            [&] { CD_CHECK_OK(session->Update(delta)); });
        double cpu = ProcessCpuSeconds() - cpu0;
        if (rep == 0 || secs < update_seconds) {
          update_seconds = secs;
          update_cpu = cpu;
        }
      }
      uint64_t reused = session->last_update_stats().reused_pairs;

      // The no-Apply alternative: rebuild the merged observations
      // from scratch and run a cold session.
      const Dataset& merged = *session->current_data();
      SessionOptions cold_options = options;
      cold_options.online_updates = false;
      double rebuild_seconds = 0.0;
      double rebuild_cpu = 0.0;
      std::vector<SlotId> cold_truth;
      for (int rep = 0; rep < 3; ++rep) {
        double cpu0 = ProcessCpuSeconds();
        double secs = Stopwatch::Time([&] {
          Dataset rebuilt = RebuildFromScratch(merged);
          auto cold = Session::Create(cold_options);
          CD_CHECK_OK(cold.status());
          auto report = cold->Run(rebuilt);
          CD_CHECK_OK(report.status());
          cold_truth = report->fusion.truth;
        });
        double cpu = ProcessCpuSeconds() - cpu0;
        if (rep == 0 || secs < rebuild_seconds) {
          rebuild_seconds = secs;
          rebuild_cpu = cpu;
        }
      }
      // The two paths must agree exactly — a cheap standing guard on
      // top of the ctest equivalence suite.
      if (session->report().fusion.truth != cold_truth) {
        std::fprintf(stderr,
                     "update/rebuild truth mismatch on %s (%s)\n",
                     spec.name.c_str(), detector);
        return 5;
      }

      online.AddRow({spec.name, detector, HumanSeconds(update_seconds),
                     HumanSeconds(rebuild_seconds),
                     Fmt(rebuild_seconds / update_seconds, "%.2fx"),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           reused))});
      reporter.Add({.name = "update",
                    .detector = detector,
                    .dataset = spec.name,
                    .scale = spec.scale,
                    .real_seconds = update_seconds,
                    .cpu_seconds = update_cpu,
                    .iterations = 1,
                    .items_per_second = 0.0,
                    .threads = 1});
      reporter.Add({.name = "rebuild",
                    .detector = detector,
                    .dataset = spec.name,
                    .scale = spec.scale,
                    .real_seconds = rebuild_seconds,
                    .cpu_seconds = rebuild_cpu,
                    .iterations = 1,
                    .items_per_second = 0.0,
                    .threads = 1});
    }
  }
  std::printf(
      "%s\n",
      online
          .Render("Online updates — Session::Update(small delta) vs "
                  "rebuild-from-scratch + cold re-run (bit-identical "
                  "outputs)")
          .c_str());

  MaybeWriteJson(reporter, json_path);
  return 0;
}
