#ifndef COPYDETECT_BENCH_JSON_REPORTER_H_
#define COPYDETECT_BENCH_JSON_REPORTER_H_

// Machine-readable output for the bench harnesses.
//
// A harness that opts in (micro_core and scaling today) accepts
// --json=<path>; when set, it appends one BenchRecord per measured
// configuration to a JsonReporter and writes a single JSON document
// at exit. The schema is deliberately flat so
// the perf-trajectory files (BENCH_micro.json, BENCH_scaling.json, …)
// diff and plot trivially:
//
//   {
//     "benchmark": "micro_core",
//     "schema_version": 2,
//     "records": [
//       {"name": "...", "detector": "pairwise", "dataset": "book-cs",
//        "scale": 0.5, "real_seconds": 1.2e-3, "cpu_seconds": 1.1e-3,
//        "iterations": 100, "items_per_second": 0.0, "threads": 1},
//       ...
//     ]
//   }
//
// `detector` is empty for primitive micro-benchmarks; `real_seconds`
// is per iteration (seconds per operation for micro-benchmarks, total
// detection seconds with iterations == 1 for the harness tables).
// For micro_core aggregate records (--benchmark_repetitions), the
// name carries the aggregate suffix ("..._mean") and `iterations` is
// the repetition count.
//
// schema_version 2 added `threads`: the executor width the measured
// configuration ran with (1 = the serial path). Records with equal
// name/detector/dataset/scale but different `threads` form the
// speedup curve of one configuration.
//
// schema_version 3 added `p50_seconds` / `p99_seconds`: per-operation
// latency percentiles for load-style harnesses (serve_load today).
// 0 for harnesses that measure a single timed run — a mean carries no
// distribution.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace copydetect {
namespace bench {

struct BenchRecord {
  std::string name;
  std::string detector;
  std::string dataset;
  double scale = 0.0;
  double real_seconds = 0.0;
  double cpu_seconds = 0.0;
  uint64_t iterations = 1;
  double items_per_second = 0.0;
  uint64_t threads = 1;  ///< executor width (1 = serial path)
  double p50_seconds = 0.0;  ///< median per-op latency (0 = unmeasured)
  double p99_seconds = 0.0;  ///< tail per-op latency (0 = unmeasured)
};

/// Escapes `s` for use inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

class JsonReporter {
 public:
  explicit JsonReporter(std::string benchmark_name);

  void Add(BenchRecord record);

  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Renders the full document (trailing newline included).
  std::string ToJson() const;

  /// Writes the document to `path`; false (with a stderr message) on
  /// IO failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string benchmark_name_;
  std::vector<BenchRecord> records_;
};

}  // namespace bench
}  // namespace copydetect

#endif  // COPYDETECT_BENCH_JSON_REPORTER_H_
