#ifndef COPYDETECT_BENCH_JSON_REPORTER_H_
#define COPYDETECT_BENCH_JSON_REPORTER_H_

// Machine-readable output for the bench harnesses.
//
// A harness that opts in (micro_core and scaling today) accepts
// --json=<path>; when set, it appends one BenchRecord per measured
// configuration to a JsonReporter and writes a single JSON document
// at exit. The schema is deliberately flat so
// the perf-trajectory files (BENCH_micro.json, BENCH_scaling.json, …)
// diff and plot trivially:
//
//   {
//     "benchmark": "micro_core",
//     "schema_version": 2,
//     "records": [
//       {"name": "...", "detector": "pairwise", "dataset": "book-cs",
//        "scale": 0.5, "real_seconds": 1.2e-3, "cpu_seconds": 1.1e-3,
//        "iterations": 100, "items_per_second": 0.0, "threads": 1},
//       ...
//     ]
//   }
//
// `detector` is empty for primitive micro-benchmarks; `real_seconds`
// is per iteration (seconds per operation for micro-benchmarks, total
// detection seconds with iterations == 1 for the harness tables).
// For micro_core aggregate records (--benchmark_repetitions), the
// name carries the aggregate suffix ("..._mean") and `iterations` is
// the repetition count.
//
// schema_version 2 added `threads`: the executor width the measured
// configuration ran with (1 = the serial path). Records with equal
// name/detector/dataset/scale but different `threads` form the
// speedup curve of one configuration.
//
// schema_version 3 added `p50_seconds` / `p99_seconds`: per-operation
// latency percentiles for load-style harnesses (serve_load today).
// 0 for harnesses that measure a single timed run — a mean carries no
// distribution.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace copydetect {
namespace bench {

struct BenchRecord {
  std::string name;
  std::string detector;
  std::string dataset;
  double scale = 0.0;
  double real_seconds = 0.0;
  double cpu_seconds = 0.0;
  uint64_t iterations = 1;
  double items_per_second = 0.0;
  uint64_t threads = 1;  ///< executor width (1 = serial path)
  double p50_seconds = 0.0;  ///< median per-op latency (0 = unmeasured)
  double p99_seconds = 0.0;  ///< tail per-op latency (0 = unmeasured)
};

/// Escapes `s` for use inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// One (scenario, detector) quality measurement for QUALITY.json —
/// the quality-trajectory sibling of BenchRecord. Flat for the same
/// reason: tools/bench_compare.py --quality diffs two documents
/// record-by-record and fails CI on recall/precision/accuracy
/// regressions, so speed work cannot silently trade away quality.
///
///   {
///     "benchmark": "quality_sweep",
///     "schema_version": 1,
///     "records": [
///       {"scenario": "adaptive-switch", "detector": "hybrid",
///        "scale": 0.5, "precision": 1.0, "recall": 0.92, "f1": 0.958,
///        "fusion_accuracy": 0.91, "output_pairs": 24,
///        "reference_pairs": 26},
///       ...
///     ]
///   }
///
/// `precision` is measured against the clique closure of the planted
/// pairs and `recall` against the direct edges (see
/// eval/quality.h:ScoreCopyPairs).
struct QualityRecord {
  std::string scenario;
  std::string detector;
  double scale = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double fusion_accuracy = 0.0;
  uint64_t output_pairs = 0;     ///< detected direct pairs
  uint64_t reference_pairs = 0;  ///< planted direct pairs
};

/// Collects QualityRecords and writes the QUALITY.json document.
class QualityReporter {
 public:
  explicit QualityReporter(std::string benchmark_name);

  void Add(QualityRecord record);

  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Renders the full document (trailing newline included).
  std::string ToJson() const;

  /// Writes the document to `path`; false (with a stderr message) on
  /// IO failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string benchmark_name_;
  std::vector<QualityRecord> records_;
};

class JsonReporter {
 public:
  explicit JsonReporter(std::string benchmark_name);

  void Add(BenchRecord record);

  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  /// Renders the full document (trailing newline included).
  std::string ToJson() const;

  /// Writes the document to `path`; false (with a stderr message) on
  /// IO failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string benchmark_name_;
  std::vector<BenchRecord> records_;
};

}  // namespace bench
}  // namespace copydetect

#endif  // COPYDETECT_BENCH_JSON_REPORTER_H_
