// Table VII: execution time of each method on the four data sets, with
// the paper's improvement chain — SAMPLE1/SAMPLE2/INDEX against
// PAIRWISE, each later row against the row above, and the total
// improvement of the final configuration against PAIRWISE.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

namespace {

struct TimedMethod {
  std::string name;
  double seconds = 0.0;
  std::string improvement;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("table7_time: Table VII execution-time chain");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  TextTable table;
  table.SetHeader({"Dataset", "Method", "Detect time", "Improvement"});

  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);
    double rate = DefaultSamplingRate(spec.name);

    auto detect_seconds = [&](DetectorKind kind) {
      auto outcome = RunFusion(world, kind, options);
      CD_CHECK_OK(outcome.status());
      return outcome->fusion.detect_seconds;
    };
    auto sampled_seconds = [&](DetectorKind base, SamplingMethod method,
                               double r) {
      auto detector =
          MakeSampledDetector(options.params, base, method, r, seed);
      auto outcome =
          RunFusionWithDetector(world, detector.get(), options);
      CD_CHECK_OK(outcome.status());
      return outcome->fusion.detect_seconds;
    };

    double pairwise = detect_seconds(DetectorKind::kPairwise);
    double sample1 = sampled_seconds(DetectorKind::kPairwise,
                                     SamplingMethod::kByItem, rate);
    double sample2 = sampled_seconds(
        DetectorKind::kPairwise, SamplingMethod::kByCell,
        spec.name == "stock-1day" || spec.name == "stock-2wk"
            ? rate
            : rate * 3.0);
    double index = detect_seconds(DetectorKind::kIndex);
    double hybrid = detect_seconds(DetectorKind::kHybrid);
    double incremental = detect_seconds(DetectorKind::kIncremental);
    double scalesample = sampled_seconds(
        DetectorKind::kIncremental, SamplingMethod::kScaleSample, rate);

    std::vector<TimedMethod> rows = {
        {"pairwise", pairwise, "-"},
        {"sample1", sample1, Improvement(pairwise, sample1)},
        {"sample2", sample2, Improvement(pairwise, sample2)},
        {"index", index, Improvement(pairwise, index)},
        {"hybrid", hybrid, Improvement(index, hybrid)},
        {"incremental", incremental, Improvement(hybrid, incremental)},
        {"scalesample", scalesample,
         Improvement(incremental, scalesample)},
    };
    for (const TimedMethod& row : rows) {
      table.AddRow({spec.name, row.name, HumanSeconds(row.seconds),
                    row.improvement});
    }
    table.AddRow({spec.name, "TOTAL (scalesample vs pairwise)", "",
                  Improvement(pairwise, scalesample)});
  }
  std::printf("%s\n",
              table
                  .Render("Table VII — copy-detection time, full "
                          "fusion run (improvement vs the paper's "
                          "comparison row)")
                  .c_str());
  std::printf(
      "Paper reference: INDEX improves 83-99.6%% over PAIRWISE; HYBRID "
      "a further 2-37%%; INCREMENTAL a further 56-83%%; total "
      "improvement 99.8-99.97%%.\n");
  return 0;
}
