// Figure 2: the single-round algorithms — INDEX, BOUND, BOUND+, HYBRID
// — compared on total computations (left plot) and copy-detection time
// (right plot) across the four data sets, accumulated over all fusion
// rounds as in the paper.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  double scale = 1.0;
  uint64_t seed = 7;
  FlagSet flags("fig2_single_round: Figure 2 single-round algorithms");
  flags.Double("scale", &scale, "data-set scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  TextTable computations;
  computations.SetHeader(
      {"Dataset", "index", "bound", "boundplus", "hybrid"});
  TextTable time;
  time.SetHeader({"Dataset", "index", "bound", "boundplus", "hybrid"});

  const DetectorKind kinds[] = {
      DetectorKind::kIndex,
      DetectorKind::kBound,
      DetectorKind::kBoundPlus,
      DetectorKind::kHybrid,
  };

  for (const BenchDataset& spec : DefaultDatasets(scale)) {
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world);

    std::vector<std::string> comp_row = {spec.name};
    std::vector<std::string> time_row = {spec.name};
    for (DetectorKind kind : kinds) {
      auto outcome = RunFusion(world, kind, options);
      CD_CHECK_OK(outcome.status());
      comp_row.push_back(Millions(outcome->counters.Total()));
      time_row.push_back(HumanSeconds(outcome->fusion.detect_seconds));
    }
    computations.AddRow(comp_row);
    time.AddRow(time_row);
  }
  std::printf(
      "%s\n",
      computations
          .Render("Figure 2 (left) — computations, millions, all rounds")
          .c_str());
  std::printf(
      "%s\n",
      time.Render("Figure 2 (right) — copy-detection time, all rounds")
          .c_str());
  std::printf(
      "Paper reference: BOUND often costs *more* than INDEX (bound "
      "overhead); BOUND+ cuts ~55%% of BOUND's computations; HYBRID "
      "shaves a further ~20%% on the Book data sets and matches BOUND+ "
      "on Stock.\n");
  return 0;
}
