// Scaling curves: the paper's headline claim is that the index family
// turns copy detection from a bottleneck into "very little overhead",
// with the gap *growing* with data size (2-3 orders of magnitude at
// the paper's full sizes). This harness sweeps the data-set scale and
// prints detection time per method so the divergence is visible; the
// paper-size extrapolation is the last row's trend.
#include "bench_util.h"
#include "common/executor.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // Sweep factors applied on top of the bench default scales.
  double max_factor = flags.GetDouble("max-factor", 4.0);
  uint64_t seed = flags.GetUint64("seed", 7);
  std::string dataset = flags.GetString("dataset", "book-cs");
  // 1 = serial (the historical configuration), 0 = hardware width.
  uint64_t threads = flags.GetUint64("threads", 1);
  std::string json_path = JsonFlag(flags);
  flags.Finish();

  Executor executor(static_cast<size_t>(threads));

  JsonReporter reporter("scaling");

  TextTable table;
  table.SetHeader({"scale", "#pairs(all)", "pairwise", "index",
                   "incremental", "pairwise/incremental"});

  double base_scale = 0.0;
  for (const BenchDataset& spec : DefaultDatasets(1.0)) {
    if (spec.name == dataset) base_scale = spec.scale;
  }
  if (base_scale == 0.0) {
    std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
    return 2;
  }

  for (double factor = 1.0; factor <= max_factor + 1e-9;
       factor *= 2.0) {
    BenchDataset spec{dataset, base_scale * factor};
    World world = MakeWorld(spec, seed);
    FusionOptions options = OptionsFor(world, /*max_rounds=*/6);
    options.params.executor = &executor;

    auto run = [&](DetectorKind kind) {
      auto outcome = RunFusion(world, kind, options);
      CD_CHECK_OK(outcome.status());
      double seconds = outcome->fusion.detect_seconds;
      reporter.Add({.name = "detect_total",
                    .detector = std::string(DetectorKindName(kind)),
                    .dataset = dataset,
                    .scale = spec.scale,
                    .real_seconds = seconds,
                    .cpu_seconds = 0.0,
                    .iterations = 1,
                    .items_per_second = 0.0,
                    .threads = executor.num_threads()});
      return seconds;
    };
    double pairwise = run(DetectorKind::kPairwise);
    double index = run(DetectorKind::kIndex);
    double incremental = run(DetectorKind::kIncremental);

    size_t n = world.data.num_sources();
    table.AddRow({Fmt(spec.scale, "%.3f"),
                  WithCommas(n * (n - 1) / 2), HumanSeconds(pairwise),
                  HumanSeconds(index), HumanSeconds(incremental),
                  Fmt(pairwise / incremental, "%.1fx")});
  }
  std::printf(
      "%s\n",
      table
          .Render("Scaling sweep on " + dataset +
                  " — the PAIRWISE/index-family gap grows with size")
          .c_str());
  std::printf(
      "Paper reference: at full size the gap reaches 2-3 orders of "
      "magnitude (Book-full: 11,536s -> 7.9s; Stock-2wk: 3,408s -> "
      "127s).\n");
  MaybeWriteJson(reporter, json_path);
  return 0;
}
