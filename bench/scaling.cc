// Scaling curves: the paper's headline claim is that the index family
// turns copy detection from a bottleneck into "very little overhead",
// with the gap *growing* with data size (2-3 orders of magnitude at
// the paper's full sizes). This harness sweeps the data-set scale and
// prints detection time per method so the divergence is visible; the
// paper-size extrapolation is the last row's trend. Each run goes
// through the public Session facade (--detector-style registry names).
//
// --detectors picks the methods (comma list): the book-xl profile is
// sized past what the quadratic PAIRWISE baseline can touch, so its
// weekly-CI curve runs --detectors=index,incremental.
#include "bench_util.h"

using namespace copydetect;
using namespace copydetect::bench;

int main(int argc, char** argv) {
  double max_factor = 4.0;
  uint64_t seed = 7;
  std::string dataset = "book-cs";
  double base_scale = 0.0;
  std::string detector_list = "pairwise,index,incremental";
  uint64_t threads = 1;
  std::string json_path;
  FlagSet flags("scaling: detection-cost scaling curves");
  flags.Double("max-factor", &max_factor,
               "largest size multiplier in the sweep");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.String("dataset", &dataset, "bench data-set name");
  flags.Double("base-scale", &base_scale,
               "starting scale (0 = the data set's bench default)");
  flags.String("detectors", &detector_list,
               "comma-separated detector names to sweep");
  flags.Uint64("threads", &threads, "executor width per run");
  JsonFlag(flags, &json_path);
  flags.ParseOrDie(argc, argv);
  std::vector<std::string> detectors = Split(detector_list, ',');

  JsonReporter reporter("scaling");

  const bool ratio_col = detectors.size() >= 2;
  TextTable table;
  std::vector<std::string> header = {"scale", "#pairs(all)"};
  for (const std::string& d : detectors) header.push_back(d);
  if (ratio_col) {
    header.push_back(detectors.front() + "/" + detectors.back());
  }
  table.SetHeader(header);

  if (base_scale <= 0.0) {
    for (const BenchDataset& spec : DefaultDatasets(1.0)) {
      if (spec.name == dataset) base_scale = spec.scale;
    }
    if (base_scale <= 0.0) base_scale = 0.5;
  }

  for (double factor = 1.0; factor <= max_factor + 1e-9;
       factor *= 2.0) {
    BenchDataset spec{dataset, base_scale * factor};
    World world = MakeWorld(spec, seed);
    SessionOptions options = SessionOptionsFor(world, /*max_rounds=*/6);
    options.threads = static_cast<size_t>(threads);

    size_t run_threads = 0;
    auto run = [&](const std::string& detector) {
      options.detector = detector;
      auto session = Session::Create(options);
      CD_CHECK_OK(session.status());
      run_threads = session->threads();
      auto report = session->Run(world.data);
      CD_CHECK_OK(report.status());
      double seconds = report->fusion.detect_seconds;
      // Throughput = analyzed pairs per detection second: the
      // detector's pairs_tracked counter accumulated over the run's
      // rounds against the detection wall time. The seed harness
      // emitted a constant 0 here, which made the field untrustworthy
      // for cross-run comparison.
      double pairs =
          static_cast<double>(report->counters.pairs_tracked);
      reporter.Add({.name = "detect_total",
                    .detector = detector,
                    .dataset = dataset,
                    .scale = spec.scale,
                    .real_seconds = seconds,
                    .cpu_seconds = report->fusion.detect_cpu_seconds,
                    .iterations = 1,
                    .items_per_second =
                        seconds > 0.0 ? pairs / seconds : 0.0,
                    .threads = run_threads});
      return seconds;
    };
    std::vector<double> times;
    times.reserve(detectors.size());
    for (const std::string& d : detectors) times.push_back(run(d));

    size_t n = world.data.num_sources();
    std::vector<std::string> row = {Fmt(spec.scale, "%.3f"),
                                    WithCommas(n * (n - 1) / 2)};
    for (double t : times) row.push_back(HumanSeconds(t));
    if (ratio_col) {
      row.push_back(Fmt(times.front() / times.back(), "%.1fx"));
    }
    table.AddRow(row);
  }
  std::printf(
      "%s\n",
      table
          .Render("Scaling sweep on " + dataset +
                  " — the PAIRWISE/index-family gap grows with size")
          .c_str());
  std::printf(
      "Paper reference: at full size the gap reaches 2-3 orders of "
      "magnitude (Book-full: 11,536s -> 7.9s; Stock-2wk: 3,408s -> "
      "127s).\n");
  MaybeWriteJson(reporter, json_path);
  return 0;
}
