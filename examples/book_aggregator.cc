// Book aggregator: many small sources, sampling, and copier clusters.
//
// Generates a Book-CS-shaped world (hundreds of book stores, most
// covering a handful of books) and shows the workflow the paper's
// §VI-E motivates: run SCALESAMPLE-d incremental detection — item
// sampling with a per-source floor — and report the copier *clusters*
// (connected components of the detected copying graph), comparing
// against detection on the full data. Both runs are one SessionOptions
// apart: sampling is a facade option, not bespoke detector wiring.
//
//   ./book_aggregator [--scale=0.5] [--seed=11] [--rate=0.1]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "copydetect/session.h"

using namespace copydetect;

namespace {

/// Tiny union-find over source ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

void PrintClusters(const Dataset& data, const CopyResult& copies,
                   const char* label) {
  UnionFind uf(data.num_sources());
  std::vector<uint64_t> pairs = copies.CopyingPairs();
  for (uint64_t key : pairs) uf.Union(PairFirst(key), PairSecond(key));
  std::vector<std::vector<SourceId>> clusters(data.num_sources());
  for (uint64_t key : pairs) {
    // Collect members lazily: only sources that appear in some pair.
    clusters[uf.Find(PairFirst(key))].push_back(PairFirst(key));
    clusters[uf.Find(PairSecond(key))].push_back(PairSecond(key));
  }
  std::printf("%s: %zu copying pairs\n", label, pairs.size());
  for (auto& members : clusters) {
    if (members.empty()) continue;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    if (members.size() < 2) continue;
    std::printf("  cluster:");
    for (SourceId s : members) {
      std::printf(" %s", std::string(data.source_name(s)).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  uint64_t seed = 11;
  double rate = 0.1;
  FlagSet flags("book_aggregator: Book-CS world with sampling");
  flags.Double("scale", &scale, "world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.Double("rate", &rate, "detection sampling rate");
  flags.ParseOrDie(argc, argv);

  auto world_or = MakeWorldByName("book-cs", scale, seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;
  std::printf("Book world (scale %.2f): %s\n\n", scale,
              ComputeStats(world.data).ToString().c_str());

  SessionOptions options;
  options.detector = "incremental";
  options.alpha = 0.1;
  options.s = 0.8;
  options.n = 50.0;

  // Full-data incremental detection (reference).
  auto full_session = Session::Create(options);
  CD_CHECK_OK(full_session.status());
  auto full = full_session->Run(world.data);
  CD_CHECK_OK(full.status());

  // SCALESAMPLE-d detection: 10% of items but at least 4 per source.
  SessionOptions sampled_options = options;
  sampled_options.sample_rate = rate;
  sampled_options.sample_method = SamplingMethod::kScaleSample;
  sampled_options.sample_seed = seed;
  auto sampled_session = Session::Create(sampled_options);
  CD_CHECK_OK(sampled_session.status());
  auto sampled = sampled_session->Run(world.data);
  CD_CHECK_OK(sampled.status());

  TextTable table;
  table.SetHeader(
      {"Run", "Detect time", "Gold accuracy", "P vs full", "R vs full"});
  PrfScores prf = ComparePairs(sampled->copies(), full->copies());
  table.AddRow({"full data",
                HumanSeconds(full->fusion.detect_seconds),
                StrFormat("%.3f", world.gold.Accuracy(
                                      world.data, full->truth())),
                "-", "-"});
  table.AddRow(
      {StrFormat("scalesample %.0f%%", rate * 100.0),
       HumanSeconds(sampled->fusion.detect_seconds),
       StrFormat("%.3f",
                 world.gold.Accuracy(world.data, sampled->truth())),
       StrFormat("%.2f", prf.precision), StrFormat("%.2f", prf.recall)});
  std::printf("%s\n", table.Render("Full vs sampled detection:").c_str());

  PrintClusters(world.data, full->copies(), "Full-data clusters");
  std::printf("\n");
  PrintClusters(world.data, sampled->copies(), "Sampled clusters");
  return 0;
}
