// Quickstart: the paper's running example end to end.
//
// Builds the 10-source / 5-item world of Table I, runs copy-aware
// iterative truth finding through the public Session facade with the
// HYBRID detector, and prints the detected copiers, the resolved
// truth, and the learned accuracies.
//
//   ./quickstart
#include <cstdio>

#include "copydetect/session.h"

using namespace copydetect;

int main(int argc, char** argv) {
  // No flags — but typos must fail loudly instead of silently running
  // with defaults.
  FlagSet flags("quickstart: the paper's running example end to end");
  flags.ParseOrDie(argc, argv);

  World world = MotivatingExample();
  const Dataset& data = world.data;
  std::printf("Data: %zu sources, %zu items, %zu observations\n\n",
              data.num_sources(), data.num_items(),
              data.num_observations());

  // 1. Configure the whole pipeline exactly like the paper's example:
  //    alpha = .1, s = .8, n = 50, HYBRID detection.
  SessionOptions options;
  options.detector = "hybrid";
  options.alpha = 0.1;
  options.s = 0.8;
  options.n = 50.0;

  // 2. One-shot run through the facade.
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());
  auto report = session->Run(data);
  CD_CHECK_OK(report.status());

  // 3. Detected copying relationships.
  std::printf("Detected copying (Pr(independent) <= 0.5):\n");
  for (uint64_t key : report->copies().CopyingPairs()) {
    SourceId a = PairFirst(key);
    SourceId b = PairSecond(key);
    PairPosterior post = report->copies().Get(a, b);
    std::printf("  %s <-> %s   Pr(indep)=%.4f\n",
                std::string(data.source_name(a)).c_str(),
                std::string(data.source_name(b)).c_str(), post.p_indep);
  }

  // 4. Resolved truth per item.
  TextTable table;
  table.SetHeader({"Item", "Resolved value", "Probability", "Gold"});
  for (ItemId d = 0; d < data.num_items(); ++d) {
    SlotId v = report->truth()[d];
    table.AddRow({std::string(data.item_name(d)),
                  std::string(data.slot_value(v)),
                  StrFormat("%.3f", report->fusion.value_probs[v]),
                  std::string(world.gold.Lookup(d))});
  }
  std::printf("\n%s", table.Render("Resolved truth:").c_str());

  // 5. Learned source accuracies vs the planted ones.
  TextTable accs;
  accs.SetHeader({"Source", "Learned accuracy", "Planted"});
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    accs.AddRow({std::string(data.source_name(s)),
                 StrFormat("%.2f", report->accuracies()[s]),
                 StrFormat("%.2f", world.true_accuracy[s])});
  }
  std::printf("\n%s", accs.Render("Source accuracies:").c_str());

  std::printf("\nConverged in %d rounds; gold accuracy %.0f%%; "
              "%s\n",
              report->rounds(),
              100.0 * world.gold.Accuracy(data, report->truth()),
              report->counters.ToString().c_str());
  return 0;
}
