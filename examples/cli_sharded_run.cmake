# ctest driver for the multi-process sharded run (Session BSP API):
# one coordinator init, then per fusion round three shard processes +
# one merge process, until the merge reports the run finished. The
# final report's truth/accuracies/copies CSVs must be byte-identical
# to a plain single-process run on the same data.
#   cmake -DCLI=<copydetect_cli> -DWORK_DIR=<dir> -P this_file
#
# Both the baseline and every sharded invocation load the same saved
# CSV (not the generator directly): CSV round-tripping fixes the id
# assignment, so all processes agree on the pair-key space.
set(obs "${WORK_DIR}/bsp_obs.csv")
set(state "${WORK_DIR}/bsp_state.cdsnap")
set(base_truth "${WORK_DIR}/bsp_base_truth.csv")
set(base_accs "${WORK_DIR}/bsp_base_accs.csv")
set(base_copies "${WORK_DIR}/bsp_base_copies.csv")
set(bsp_truth "${WORK_DIR}/bsp_truth.csv")
set(bsp_accs "${WORK_DIR}/bsp_accs.csv")
set(bsp_copies "${WORK_DIR}/bsp_copies.csv")
set(shard_files "")
foreach(i RANGE 0 2)
  list(APPEND shard_files "${WORK_DIR}/bsp_shard${i}.cdsnap")
endforeach()
list(JOIN shard_files "," shard_list)

execute_process(
  COMMAND ${CLI} --generate=book-cs --scale=0.1 --seed=7
          --detector=index --save-data=${obs}
  RESULT_VARIABLE gen_result OUTPUT_QUIET)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "world generation + --save-data failed (${gen_result})")
endif()

# Single-process baseline on the saved CSV, serial.
execute_process(
  COMMAND ${CLI} --data=${obs} --detector=index --threads=1
          --out-truth=${base_truth} --out-accuracies=${base_accs}
          --out-copies=${base_copies}
  RESULT_VARIABLE base_result OUTPUT_QUIET)
if(NOT base_result EQUAL 0)
  message(FATAL_ERROR "single-process baseline failed (${base_result})")
endif()

# Coordinator init: round-0 state for a 3-shard run.
execute_process(
  COMMAND ${CLI} --data=${obs} --detector=index --shards=3
          --init-state=${state}
  RESULT_VARIABLE init_result OUTPUT_QUIET)
if(NOT init_result EQUAL 0)
  message(FATAL_ERROR "--init-state failed (${init_result})")
endif()

# BSP supersteps: 3 shard processes (at 2 threads each — results are
# width-invariant) then one merge, until the merge reports done. The
# bound matches the CLI's default --max-rounds.
set(done FALSE)
foreach(round RANGE 1 12)
  foreach(i RANGE 0 2)
    list(GET shard_files ${i} shard_file)
    execute_process(
      COMMAND ${CLI} --data=${obs} --detector=index --threads=2
              --shards=3 --shard=${i} --state=${state}
              --emit-shard=${shard_file}
      RESULT_VARIABLE shard_result OUTPUT_QUIET)
    if(NOT shard_result EQUAL 0)
      message(FATAL_ERROR
        "shard ${i} of round ${round} failed (${shard_result})")
    endif()
  endforeach()
  execute_process(
    COMMAND ${CLI} --data=${obs} --detector=index --shards=3
            --state=${state} --merge-shards=${shard_list}
            --out-truth=${bsp_truth} --out-accuracies=${bsp_accs}
            --out-copies=${bsp_copies}
    RESULT_VARIABLE merge_result OUTPUT_VARIABLE merge_out)
  if(NOT merge_result EQUAL 0)
    message(FATAL_ERROR "merge of round ${round} failed (${merge_result})")
  endif()
  string(FIND "${merge_out}" "BSP done" done_pos)
  if(NOT done_pos EQUAL -1)
    set(done TRUE)
    break()
  endif()
endforeach()
if(NOT done)
  message(FATAL_ERROR "sharded run never finished within the round cap")
endif()

foreach(kind truth accs copies)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/bsp_base_${kind}.csv ${WORK_DIR}/bsp_${kind}.csv
    RESULT_VARIABLE diff_result)
  if(NOT diff_result EQUAL 0)
    message(FATAL_ERROR
      "sharded-run ${kind} CSV differs from the single-process run's")
  endif()
endforeach()

file(REMOVE ${obs} ${state} ${shard_files}
  ${base_truth} ${base_accs} ${base_copies}
  ${bsp_truth} ${bsp_accs} ${bsp_copies})
