// copydetect_cli — run the full pipeline from the command line.
//
// Load a CSV data set (source,item,value rows) or generate a synthetic
// world, run copy-aware truth finding through the public Session
// facade with any registered detector, and write the resolved truth,
// learned accuracies and the analyzed copy graph back out as CSV. The
// minimal downstream-user entry point.
//
//   # on your own data
//   ./copydetect_cli --data=observations.csv --detector=hybrid
//       --out-truth=truth.csv --out-copies=copies.csv
//
//   # on a synthetic world, evaluating against the planted truth
//   ./copydetect_cli --generate=book-cs --scale=0.2 --seed=7
//
//   # list the registered detectors
//   ./copydetect_cli --detector=help
//
//   # multi-threaded detection + fusion (0 = all hardware threads)
//   ./copydetect_cli --generate=book-full --threads=0
//
//   # persist the finished session; a later invocation warm-starts
//   # from the file instead of re-running from cold
//   ./copydetect_cli --generate=book-full --save-snapshot=run.cdsnap
//   ./copydetect_cli --load-snapshot=run.cdsnap --out-truth=truth.csv
//
//   # serve a big snapshot zero-copy out of the mapped file
//   ./copydetect_cli --load-snapshot=run.cdsnap --load-mode=mapped
//
//   # multi-process sharded run (BSP, one fusion round per superstep;
//   # examples/cli_sharded_run.cmake drives the full loop)
//   ./copydetect_cli --data=obs.csv --shards=3 --init-state=st.cdsnap
//   ./copydetect_cli --data=obs.csv --shards=3 --shard=0
//       --state=st.cdsnap --emit-shard=shard0.cdsnap   # ... 1, 2
//   ./copydetect_cli --data=obs.csv --shards=3 --state=st.cdsnap
//       --merge-shards=shard0.cdsnap,shard1.cdsnap,shard2.cdsnap
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "copydetect/session.h"

using namespace copydetect;

namespace {

// Observation files are CSV by default; a .json/.ndjson/.jsonl
// extension selects the ndjson format (docs/FORMATS.md §JSON). Both
// --data and --save-data honor the same rule.
bool IsJsonPath(const std::string& path) {
  for (const char* ext : {".json", ".ndjson", ".jsonl"}) {
    size_t len = std::strlen(ext);
    if (path.size() >= len &&
        path.compare(path.size() - len, len, ext) == 0) {
      return true;
    }
  }
  return false;
}

StatusOr<Dataset> LoadObservations(const std::string& path) {
  return IsJsonPath(path) ? Dataset::LoadJson(path)
                          : Dataset::LoadCsv(path);
}

Status SaveObservations(const Dataset& data, const std::string& path) {
  return IsJsonPath(path) ? data.SaveJson(path) : data.SaveCsv(path);
}

Status WriteTruthCsv(const std::string& path, const Dataset& data,
                     const Report& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"item", "value", "probability"});
  for (ItemId d = 0; d < data.num_items(); ++d) {
    SlotId v = report.truth()[d];
    if (v == kInvalidSlot) continue;
    rows.push_back({std::string(data.item_name(d)),
                    std::string(data.slot_value(v)),
                    StrFormat("%.6f", report.fusion.value_probs[v])});
  }
  return WriteCsvFile(path, rows);
}

Status WriteAccuraciesCsv(const std::string& path, const Dataset& data,
                          const Report& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "accuracy"});
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    rows.push_back({std::string(data.source_name(s)),
                    StrFormat("%.6f", report.accuracies()[s])});
  }
  return WriteCsvFile(path, rows);
}

Status WriteCopiesCsv(const std::string& path, const Dataset& data,
                      const CopyGraph& graph) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cluster", "source_a", "source_b", "kind",
                  "pr_a_copies_b", "elected_original"});
  auto kind_name = [](EdgeKind kind) {
    switch (kind) {
      case EdgeKind::kDirect:
        return "direct";
      case EdgeKind::kCoCopy:
        return "co-copy";
      case EdgeKind::kIndirect:
        return "indirect";
    }
    return "?";
  };
  for (size_t c = 0; c < graph.clusters.size(); ++c) {
    const CopyCluster& cluster = graph.clusters[c];
    for (const ClassifiedEdge& edge : cluster.edges) {
      rows.push_back(
          {StrFormat("%zu", c),
           std::string(data.source_name(edge.a)),
           std::string(data.source_name(edge.b)), kind_name(edge.kind),
           StrFormat("%.6f", edge.pr_a_copies_b),
           std::string(data.source_name(cluster.original))});
    }
  }
  return WriteCsvFile(path, rows);
}

Status RunCli(int argc, char** argv) {
  std::string data_path;
  std::string generate;
  double scale = 0.2;
  uint64_t seed = 7;
  std::string detector_name = "hybrid";
  double alpha = 0.1;
  double s = 0.8;
  double n = 50.0;
  uint64_t max_rounds = 12;
  uint64_t threads = 1;
  std::string out_truth;
  std::string out_accs;
  std::string out_copies;
  std::string save_data;
  std::string save_snapshot;
  std::string load_snapshot;
  std::string load_mode_name = "owned";
  uint64_t shards = 1;
  uint64_t shard = 0;
  std::string init_state;
  std::string state_path;
  std::string emit_shard;
  std::string merge_shards;

  FlagSet flags(
      "copydetect_cli: run the full pipeline from the command line");
  flags.String("data", &data_path,
               "input observations file (CSV; .json/.ndjson = ndjson)");
  flags.String("generate", &generate,
               "synthetic world profile (book-cs, stock-1day, ...)");
  flags.Double("scale", &scale, "generated-world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.String("detector", &detector_name,
               "detector registry name ('help' lists them)");
  flags.Double("alpha", &alpha, "a-priori copying probability");
  flags.Double("s", &s, "copy selectivity");
  flags.Double("n", &n, "false values per item");
  flags.Uint64("max-rounds", &max_rounds, "fusion round cap");
  flags.Uint64("threads", &threads,
               "executor width (1 = serial, 0 = all hardware threads)");
  flags.String("out-truth", &out_truth, "write resolved-truth CSV here");
  flags.String("out-accuracies", &out_accs,
               "write learned-accuracies CSV here");
  flags.String("out-copies", &out_copies, "write copy-graph CSV here");
  flags.String("save-data", &save_data,
               "write the observations here (CSV; .json/.ndjson = ndjson)");
  // Snapshot persistence (docs/FORMATS.md): --save-snapshot persists
  // the finished session; --load-snapshot warm-starts from such a
  // file instead of re-parsing + re-running.
  flags.String("save-snapshot", &save_snapshot,
               "persist the finished session here");
  flags.String("load-snapshot", &load_snapshot,
               "warm-start from this snapshot file");
  flags.String("load-mode", &load_mode_name,
               "snapshot backing: owned | mapped");
  // Multi-process sharded runs (Session BSP API): --init-state writes
  // the round-0 coordinator state, --emit-shard runs this process's
  // shard for the next round, --merge-shards folds a round's shard
  // files and advances the fusion loop.
  flags.Uint64("shards", &shards, "BSP: total shard count");
  flags.Uint64("shard", &shard, "BSP: this process's shard id");
  flags.String("init-state", &init_state,
               "BSP: write round-0 coordinator state here");
  flags.String("state", &state_path, "BSP: coordinator state file");
  flags.String("emit-shard", &emit_shard,
               "BSP: write this round's shard file here");
  flags.String("merge-shards", &merge_shards,
               "BSP: comma-separated shard files to fold");
  // Unknown flags are an error, never a silent fall-through to
  // defaults. The detector list rides along so the most common typo
  // (--detector mis-spellings and friends) is self-correcting.
  Status flag_status = flags.Parse(argc, argv);
  if (!flag_status.ok()) {
    return Status::InvalidArgument(
        flag_status.message() +
        " (detectors, via --detector=<name>: " + ListDetectorsJoined() +
        ")");
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help().c_str());
    return Status::OK();
  }

  if (detector_name == "help" || detector_name == "list") {
    std::printf("registered detectors:\n");
    for (const std::string& name : ListDetectors()) {
      std::printf("  %s\n", name.c_str());
    }
    return Status::OK();
  }

  if (load_snapshot.empty() && data_path.empty() == generate.empty()) {
    return Status::InvalidArgument(
        "exactly one of --data=<csv>, --generate=<profile> or "
        "--load-snapshot=<file> is required (profiles: book-cs, "
        "book-full, stock-1day, stock-2wk, book-xl, example)");
  }
  if (!load_snapshot.empty() &&
      (!data_path.empty() || !generate.empty())) {
    return Status::InvalidArgument(
        "--load-snapshot replaces --data/--generate — the data set "
        "lives inside the snapshot file");
  }
  if (load_mode_name != "owned" && load_mode_name != "mapped") {
    return Status::InvalidArgument(
        "--load-mode must be 'owned' or 'mapped', got '" +
        load_mode_name + "'");
  }
  const int bsp_modes = (init_state.empty() ? 0 : 1) +
                        (emit_shard.empty() ? 0 : 1) +
                        (merge_shards.empty() ? 0 : 1);
  if (bsp_modes > 1) {
    return Status::InvalidArgument(
        "--init-state, --emit-shard and --merge-shards are separate "
        "steps of the sharded-run protocol — pass exactly one");
  }
  if (bsp_modes == 1 && !load_snapshot.empty()) {
    return Status::InvalidArgument(
        "sharded-run steps need the shared data set via --data or "
        "--generate, not --load-snapshot");
  }
  if ((!emit_shard.empty() || !merge_shards.empty()) &&
      state_path.empty()) {
    return Status::InvalidArgument(
        "--emit-shard/--merge-shards need the coordinator state via "
        "--state=<file>");
  }
  if (!load_snapshot.empty()) {
    // The snapshot fixes the whole session configuration; silently
    // ignoring an explicit override would run with settings the user
    // did not ask for (the same no-fall-through policy as unknown
    // flags).
    for (const char* fixed : {"detector", "alpha", "s", "n",
                              "max-rounds", "threads", "scale",
                              "seed"}) {
      if (flags.Provided(fixed)) {
        return Status::InvalidArgument(
            std::string("--load-snapshot restores the saved session "
                        "configuration; --") +
            fixed + " cannot be overridden on a warm start");
      }
    }
  }

  // ---- Load, generate, or warm-start from a snapshot. ----
  World world;
  bool have_gold = false;
  std::optional<Session> session;
  Report report;
  if (!load_snapshot.empty()) {
    LoadOptions load_options(load_mode_name == "mapped"
                                 ? LoadMode::kMapped
                                 : LoadMode::kOwned);
    auto loaded = Session::Load(load_snapshot, load_options);
    CD_RETURN_IF_ERROR(loaded.status());
    session.emplace(std::move(*loaded));
    world.data = *session->current_data();
    report = session->report();
    std::printf("Warm start: %s (detector %s, %d fused rounds "
                "restored)\n",
                load_snapshot.c_str(), report.detector.c_str(),
                report.rounds());
  } else {
    if (!generate.empty()) {
      auto world_or = MakeWorldByName(generate, scale, seed);
      CD_RETURN_IF_ERROR(world_or.status());
      world = std::move(world_or).value();
      have_gold = true;
      if (n == 50.0) n = world.suggested_n;
    } else {
      auto data = LoadObservations(data_path);
      CD_RETURN_IF_ERROR(data.status());
      world.data = std::move(data).value();
    }

    // ---- Configure and run through the facade. ----
    SessionOptions options;
    options.detector = detector_name;
    options.alpha = alpha;
    options.s = s;
    options.n = n;
    options.max_rounds = static_cast<int>(max_rounds);
    options.threads = static_cast<size_t>(threads);
    // Save needs the session to keep its state past Run.
    options.online_updates = !save_snapshot.empty();
    options.plan.num_shards = static_cast<uint32_t>(shards);
    options.plan.shard_id = static_cast<uint32_t>(shard);

    auto created = Session::Create(options);
    CD_RETURN_IF_ERROR(created.status());
    session.emplace(std::move(*created));
    if (session->threads() > 1) {
      std::printf("Threads: %zu\n", session->threads());
    }

    if (bsp_modes == 1) {
      if (!save_data.empty()) {
        CD_RETURN_IF_ERROR(SaveObservations(world.data, save_data));
      }
      if (!init_state.empty()) {
        CD_RETURN_IF_ERROR(
            session->InitShardedRun(world.data, init_state));
        std::printf("BSP init: %s (%llu shards)\n", init_state.c_str(),
                    static_cast<unsigned long long>(shards));
        return Status::OK();
      }
      if (!emit_shard.empty()) {
        CD_RETURN_IF_ERROR(session->RunShardRound(
            world.data, state_path, emit_shard));
        std::printf("BSP shard %llu/%llu: wrote %s\n",
                    static_cast<unsigned long long>(shard),
                    static_cast<unsigned long long>(shards),
                    emit_shard.c_str());
        return Status::OK();
      }
      auto done = session->MergeShardRound(
          world.data, Split(merge_shards, ','), state_path);
      CD_RETURN_IF_ERROR(done.status());
      if (!*done) {
        std::printf("BSP merge: round folded into %s, run continues\n",
                    state_path.c_str());
        return Status::OK();
      }
      report = session->report();
      std::printf("BSP done: finished after %d rounds\n",
                  report.rounds());
    } else {
      auto report_or = session->Run(world.data);
      CD_RETURN_IF_ERROR(report_or.status());
      report = std::move(report_or).value();
    }
  }
  if (!save_data.empty() && bsp_modes == 0) {
    CD_RETURN_IF_ERROR(SaveObservations(world.data, save_data));
  }

  std::printf("Data: %s\n", ComputeStats(world.data).ToString().c_str());

  std::printf(
      "Fusion: %d rounds (%s), detection %s, %s computations\n",
      report.rounds(), report.converged() ? "converged" : "round cap",
      HumanSeconds(report.fusion.detect_seconds).c_str(),
      WithCommas(report.counters.Total()).c_str());

  // ---- Copy graph (analyzed by the session). ----
  const CopyGraph& graph = report.graph;
  std::printf("Copying: %zu pairs in %zu clusters over %zu sources\n",
              graph.NumPairs(), graph.clusters.size(),
              graph.NumSources());
  for (const CopyCluster& cluster : graph.clusters) {
    std::printf("  original %s <-",
                std::string(world.data.source_name(cluster.original))
                    .c_str());
    for (const CopyEdge& edge : cluster.direct_edges) {
      std::printf(" %s(%.2f)",
                  std::string(world.data.source_name(edge.copier))
                      .c_str(),
                  edge.probability);
    }
    std::printf("\n");
  }

  if (have_gold) {
    std::printf("Gold accuracy: %.3f over %zu items\n",
                world.gold.Accuracy(world.data, report.truth()),
                world.gold.size());
    PrfScores prf =
        ComparePairsToTruth(report.copies(), world.copy_pairs);
    std::printf("Planted copy pairs: recall %.2f (direct), precision "
                "%.2f (closure)\n",
                prf.recall,
                ComparePairsToTruth(report.copies(),
                                    CopyClosure(world.copy_pairs))
                    .precision);
  }

  // ---- Outputs. ----
  if (!out_truth.empty()) {
    CD_RETURN_IF_ERROR(WriteTruthCsv(out_truth, world.data, report));
    std::printf("wrote %s\n", out_truth.c_str());
  }
  if (!out_accs.empty()) {
    CD_RETURN_IF_ERROR(
        WriteAccuraciesCsv(out_accs, world.data, report));
    std::printf("wrote %s\n", out_accs.c_str());
  }
  if (!out_copies.empty()) {
    CD_RETURN_IF_ERROR(WriteCopiesCsv(out_copies, world.data, graph));
    std::printf("wrote %s\n", out_copies.c_str());
  }
  if (!save_snapshot.empty()) {
    CD_RETURN_IF_ERROR(session->Save(save_snapshot));
    std::printf("wrote snapshot %s\n", save_snapshot.c_str());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Status status = RunCli(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "copydetect_cli: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  return 0;
}
