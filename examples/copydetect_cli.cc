// copydetect_cli — run the full pipeline from the command line.
//
// Load a CSV data set (source,item,value rows) or generate a synthetic
// world, run copy-aware truth finding with any detector, and write the
// resolved truth, learned accuracies and the analyzed copy graph back
// out as CSV. The minimal downstream-user entry point.
//
//   # on your own data
//   ./copydetect_cli --data=observations.csv --detector=hybrid
//       --out-truth=truth.csv --out-copies=copies.csv
//
//   # on a synthetic world, evaluating against the planted truth
//   ./copydetect_cli --generate=book-cs --scale=0.2 --seed=7
//
//   # multi-threaded detection + fusion (0 = all hardware threads)
//   ./copydetect_cli --generate=book-full --threads=0
#include <cstdio>

#include "common/csv.h"
#include "common/executor.h"
#include "common/stringutil.h"
#include "core/copy_graph.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "model/stats.h"

using namespace copydetect;

namespace {

Status WriteTruthCsv(const std::string& path, const Dataset& data,
                     const FusionResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"item", "value", "probability"});
  for (ItemId d = 0; d < data.num_items(); ++d) {
    SlotId v = result.truth[d];
    if (v == kInvalidSlot) continue;
    rows.push_back({std::string(data.item_name(d)),
                    std::string(data.slot_value(v)),
                    StrFormat("%.6f", result.value_probs[v])});
  }
  return WriteCsvFile(path, rows);
}

Status WriteAccuraciesCsv(const std::string& path, const Dataset& data,
                          const FusionResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "accuracy"});
  for (SourceId s = 0; s < data.num_sources(); ++s) {
    rows.push_back({std::string(data.source_name(s)),
                    StrFormat("%.6f", result.accuracies[s])});
  }
  return WriteCsvFile(path, rows);
}

Status WriteCopiesCsv(const std::string& path, const Dataset& data,
                      const CopyGraph& graph) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cluster", "source_a", "source_b", "kind",
                  "pr_a_copies_b", "elected_original"});
  auto kind_name = [](EdgeKind kind) {
    switch (kind) {
      case EdgeKind::kDirect:
        return "direct";
      case EdgeKind::kCoCopy:
        return "co-copy";
      case EdgeKind::kIndirect:
        return "indirect";
    }
    return "?";
  };
  for (size_t c = 0; c < graph.clusters.size(); ++c) {
    const CopyCluster& cluster = graph.clusters[c];
    for (const ClassifiedEdge& edge : cluster.edges) {
      rows.push_back(
          {StrFormat("%zu", c),
           std::string(data.source_name(edge.a)),
           std::string(data.source_name(edge.b)), kind_name(edge.kind),
           StrFormat("%.6f", edge.pr_a_copies_b),
           std::string(data.source_name(cluster.original))});
    }
  }
  return WriteCsvFile(path, rows);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::string data_path = flags.GetString("data", "");
  std::string generate = flags.GetString("generate", "");
  double scale = flags.GetDouble("scale", 0.2);
  uint64_t seed = flags.GetUint64("seed", 7);
  std::string detector_name = flags.GetString("detector", "hybrid");
  double alpha = flags.GetDouble("alpha", 0.1);
  double s = flags.GetDouble("s", 0.8);
  double n = flags.GetDouble("n", 50.0);
  uint64_t max_rounds = flags.GetUint64("max-rounds", 12);
  // 1 = serial (default), 0 = hardware concurrency, N = N workers.
  uint64_t threads = flags.GetUint64("threads", 1);
  std::string out_truth = flags.GetString("out-truth", "");
  std::string out_accs = flags.GetString("out-accuracies", "");
  std::string out_copies = flags.GetString("out-copies", "");
  std::string save_data = flags.GetString("save-data", "");
  flags.Finish();

  if (data_path.empty() == generate.empty()) {
    std::fprintf(stderr,
                 "exactly one of --data=<csv> or --generate=<profile> "
                 "is required (profiles: book-cs, book-full, "
                 "stock-1day, stock-2wk, example)\n");
    return 2;
  }

  // ---- Load or generate. ----
  World world;
  bool have_gold = false;
  if (!generate.empty()) {
    auto world_or = MakeWorldByName(generate, scale, seed);
    CD_CHECK_OK(world_or.status());
    world = std::move(world_or).value();
    have_gold = true;
    if (n == 50.0) n = world.suggested_n;
  } else {
    auto data = Dataset::LoadCsv(data_path);
    CD_CHECK_OK(data.status());
    world.data = std::move(data).value();
  }
  if (!save_data.empty()) CD_CHECK_OK(world.data.SaveCsv(save_data));

  std::printf("Data: %s\n", ComputeStats(world.data).ToString().c_str());

  // ---- Configure and run. ----
  DetectorKind kind;
  if (!ParseDetectorKind(detector_name, &kind)) {
    std::fprintf(stderr, "unknown detector '%s'\n",
                 detector_name.c_str());
    return 2;
  }
  FusionOptions options;
  options.params.alpha = alpha;
  options.params.s = s;
  options.params.n = n;
  options.max_rounds = static_cast<int>(max_rounds);
  // One persistent executor shared by every detection round and the
  // fusion aggregation; --threads=1 never spawns a thread.
  Executor executor(static_cast<size_t>(threads));
  options.params.executor = &executor;
  if (executor.num_threads() > 1) {
    std::printf("Threads: %zu\n", executor.num_threads());
  }
  CD_CHECK_OK(options.params.Validate());

  auto outcome = RunFusion(world, kind, options);
  CD_CHECK_OK(outcome.status());
  const FusionResult& fusion = outcome->fusion;

  std::printf(
      "Fusion: %d rounds (%s), detection %s, %s computations\n",
      fusion.rounds, fusion.converged ? "converged" : "round cap",
      HumanSeconds(fusion.detect_seconds).c_str(),
      WithCommas(outcome->counters.Total()).c_str());

  // ---- Copy graph. ----
  CopyGraph graph = AnalyzeCopyGraph(fusion.copies);
  std::printf("Copying: %zu pairs in %zu clusters over %zu sources\n",
              graph.NumPairs(), graph.clusters.size(),
              graph.NumSources());
  for (const CopyCluster& cluster : graph.clusters) {
    std::printf("  original %s <-",
                std::string(world.data.source_name(cluster.original))
                    .c_str());
    for (const CopyEdge& edge : cluster.direct_edges) {
      std::printf(" %s(%.2f)",
                  std::string(world.data.source_name(edge.copier))
                      .c_str(),
                  edge.probability);
    }
    std::printf("\n");
  }

  if (have_gold) {
    std::printf("Gold accuracy: %.3f over %zu items\n",
                world.gold.Accuracy(world.data, fusion.truth),
                world.gold.size());
    PrfScores prf = ComparePairsToTruth(fusion.copies, world.copy_pairs);
    std::printf("Planted copy pairs: recall %.2f (direct), precision "
                "%.2f (closure)\n",
                prf.recall,
                ComparePairsToTruth(fusion.copies,
                                    CopyClosure(world.copy_pairs))
                    .precision);
  }

  // ---- Outputs. ----
  if (!out_truth.empty()) {
    CD_CHECK_OK(WriteTruthCsv(out_truth, world.data, fusion));
    std::printf("wrote %s\n", out_truth.c_str());
  }
  if (!out_accs.empty()) {
    CD_CHECK_OK(WriteAccuraciesCsv(out_accs, world.data, fusion));
    std::printf("wrote %s\n", out_accs.c_str());
  }
  if (!out_copies.empty()) {
    CD_CHECK_OK(WriteCopiesCsv(out_copies, world.data, graph));
    std::printf("wrote %s\n", out_copies.c_str());
  }
  return 0;
}
