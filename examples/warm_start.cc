// Warm start: snapshot persistence across process restarts — the
// durability leg of the production story. A serving process that dies
// must not pay a cold start (CSV parse, overlap recount, full
// detection + fusion) when it comes back; it Session::Load()s the
// snapshot its predecessor Save()d and resumes exactly where that
// process stopped, online updates included.
//
// The demo plays both processes in one binary:
//  1. "yesterday's" process runs full detection on a stock world and
//     Save()s the session to a snapshot file;
//  2. "today's" process Load()s the file — the report is available
//     immediately, no re-run — and verifies it matches the live
//     session bit for bit;
//  3. today's process then applies a fresh feed through
//     Session::Update, proving a loaded session continues incremental
//     serving just like one that never left memory.
//
//   ./warm_start [--scale=0.1] [--seed=42]
//       [--snapshot=warm_start.cdsnap]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "copydetect/session.h"

using namespace copydetect;

namespace {

/// Dies unless two finished runs agree bit for bit where it matters.
void CheckSameReport(const Report& got, const Report& want,
                     const char* what) {
  bool same = got.rounds() == want.rounds() &&
              got.converged() == want.converged() &&
              got.truth() == want.truth() &&
              got.accuracies().size() == want.accuracies().size() &&
              got.copies().NumTracked() == want.copies().NumTracked();
  for (size_t s = 0; same && s < want.accuracies().size(); ++s) {
    same = got.accuracies()[s] == want.accuracies()[s];
  }
  if (!same) {
    std::fprintf(stderr, "warm_start: %s diverged from the live run\n",
                 what);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  uint64_t seed = 42;
  std::string path = "warm_start.cdsnap";
  FlagSet flags("warm_start: snapshot persistence across restarts");
  flags.Double("scale", &scale, "world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.String("snapshot", &path, "snapshot file to write and reload");
  flags.ParseOrDie(argc, argv);

  auto world_or = GenerateWorld(Stock1DayProfile(scale), seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;
  std::printf("Stock world (scale %.2f): %s\n\n", scale,
              ComputeStats(world.data).ToString().c_str());

  // ---- Process 1: cold run, then persist. ----
  SessionOptions options;
  options.detector = "index";
  options.n = world.suggested_n;
  options.online_updates = true;  // keep state past Run for Save
  auto live = Session::Create(options);
  CD_CHECK_OK(live.status());

  Stopwatch cold_watch;
  cold_watch.Start();
  auto cold = live->Run(world.data);
  CD_CHECK_OK(cold.status());
  cold_watch.Stop();
  CD_CHECK_OK(live->Save(path));
  std::printf("cold run: %d rounds in %s, saved to %s\n",
              cold->rounds(), HumanSeconds(cold_watch.Seconds()).c_str(),
              path.c_str());

  // ---- Process 2: restart, warm start from the file. ----
  Stopwatch warm_watch;
  warm_watch.Start();
  auto restored = Session::Load(path, LoadOptions());
  CD_CHECK_OK(restored.status());
  warm_watch.Stop();
  std::printf("warm start: report restored in %s (%.0fx faster than "
              "the cold run)\n",
              HumanSeconds(warm_watch.Seconds()).c_str(),
              cold_watch.Seconds() /
                  (warm_watch.Seconds() > 0 ? warm_watch.Seconds()
                                            : 1e-9));
  CheckSameReport(restored->report(), *cold, "loaded report");

  // ---- Today's feed lands on the loaded session. ----
  DatasetDelta feed;
  const Dataset& data = *restored->current_data();
  std::span<const ItemId> items = data.items_of(0);
  for (size_t i = 0; i < items.size() && i < 8; ++i) {
    feed.Set(data.source_name(0), data.item_name(items[i]),
             "today-quote" + std::to_string(i));
  }
  CD_CHECK_OK(restored->Update(feed));
  // The live session sees the same feed; both must agree bit for bit
  // — a loaded session is the session that never left memory.
  CD_CHECK_OK(live->Update(feed));
  CheckSameReport(restored->report(), live->report(),
                  "post-update report");
  const UpdateStats& stats = restored->last_update_stats();
  std::printf("update on the loaded session: %s path, %zu items "
              "touched, report identical to the never-persisted "
              "session\n",
              stats.incremental ? "incremental" : "full-rerun",
              stats.touched_items);

  std::remove(path.c_str());
  std::printf("\nwarm start OK\n");
  return 0;
}
