// Live updates: the paper's motivating online scenario — "data
// sources often refresh their data", so copy detection has to stay
// cheap as snapshots evolve, not just on one frozen crawl.
//
// This demo keeps one Session alive across a week of simulated stock
// feeds. Day 0 runs full detection; every following day one or two
// feeds re-publish a slice of their symbols through a DatasetDelta and
// Session::Update re-detects incrementally: the snapshot is spliced by
// Dataset::Apply, overlap counts are patched per touched item, the
// round-1 inverted index is rebased, and unchanged pairs reuse the
// recorded previous round. The refreshed report is bit-identical to
// rebuilding the data set and re-running from scratch — the demo
// proves it against exactly that rebuild each day.
//
//   ./live_updates [--scale=0.1] [--seed=42] [--days=5]
#include <cstdio>
#include <string>
#include <vector>

#include "copydetect/session.h"

using namespace copydetect;

namespace {

/// One day's feed: `source` re-publishes `count` of its symbols with
/// fresh values (some equal to the old ones, as real feeds do).
DatasetDelta DailyFeed(const Dataset& data, SourceId source, int day,
                       size_t count) {
  DatasetDelta delta;
  std::span<const ItemId> items = data.items_of(source);
  for (size_t i = 0; i < items.size() && i < count; ++i) {
    delta.Set(data.source_name(source), data.item_name(items[i]),
              "day" + std::to_string(day) + "-quote" +
                  std::to_string(i));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  uint64_t seed = 42;
  uint64_t days = 5;
  FlagSet flags("live_updates: evolving-snapshot online scenario");
  flags.Double("scale", &scale, "world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.Uint64("days", &days, "number of simulated feed days");
  flags.ParseOrDie(argc, argv);

  auto world_or = GenerateWorld(Stock1DayProfile(scale), seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;
  std::printf("Stock world (scale %.2f): %s\n\n", scale,
              ComputeStats(world.data).ToString().c_str());

  SessionOptions options;
  options.detector = "index";
  options.n = world.suggested_n;
  options.online_updates = true;  // keep state for Session::Update
  auto session = Session::Create(options);
  CD_CHECK_OK(session.status());

  double day0 = Stopwatch::Time([&] {
    CD_CHECK_OK(session->Run(world.data).status());
  });
  std::printf(
      "day 0: full detection in %s (%d rounds, %zu copying pairs)\n",
      HumanSeconds(day0).c_str(), session->report().rounds(),
      session->report().copies().CopyingPairs().size());

  TextTable table;
  table.SetHeader({"Day", "Feed", "Touched items", "Update",
                   "Rebuild+rerun", "Speedup", "Copying pairs"});
  for (int day = 1; day <= static_cast<int>(days); ++day) {
    // One feed pushes today's quotes for a slice of its symbols.
    // (Update replaces the session's snapshot, so take what we need
    // from the current one by value before calling it.)
    const Dataset& data = *session->current_data();
    SourceId feed =
        static_cast<SourceId>(day % data.num_sources());
    if (data.coverage(feed) == 0) feed = 0;
    std::string feed_name(data.source_name(feed));
    DatasetDelta delta =
        DailyFeed(data, feed, day, data.coverage(feed) / 8 + 2);

    double update_seconds =
        Stopwatch::Time([&] { CD_CHECK_OK(session->Update(delta)); });
    const UpdateStats& stats = session->last_update_stats();

    // The honest yardstick — rebuild everything and re-run cold.
    SessionOptions cold_options = options;
    cold_options.online_updates = false;
    std::vector<SlotId> cold_truth;
    double rebuild_seconds = Stopwatch::Time([&] {
      Dataset rebuilt = RebuildFromScratch(*session->current_data());
      auto cold = Session::Create(cold_options);
      CD_CHECK_OK(cold.status());
      auto report = cold->Run(rebuilt);
      CD_CHECK_OK(report.status());
      cold_truth = report->fusion.truth;
    });
    if (session->report().fusion.truth != cold_truth) {
      std::fprintf(stderr, "day %d: update/rebuild disagree!\n", day);
      return 1;
    }

    table.AddRow(
        {StrFormat("%d", day), feed_name,
         StrFormat("%zu", stats.touched_items),
         HumanSeconds(update_seconds), HumanSeconds(rebuild_seconds),
         StrFormat("%.2fx", rebuild_seconds / update_seconds),
         StrFormat("%zu",
                   session->report().copies().CopyingPairs().size())});
  }
  std::printf("%s\n",
              table
                  .Render("A week of live feeds — Session::Update vs "
                          "rebuild-from-scratch (outputs verified "
                          "identical each day)")
                  .c_str());
  std::printf(
      "Every day's update produced the same truth, accuracies and "
      "copy graph as a full rebuild — it just skipped the work a "
      "small delta provably cannot change.\n");
  return 0;
}
