// Stock feeds: the paper's motivating domain (Li et al., PVLDB 2013).
//
// Generates a Stock-1day-shaped world — 55 Deep-Web sources quoting
// the same ~1000 symbols x 16 attributes, most sources covering more
// than half the items, a few copier cliques — then compares three
// fusion strategies on the planted gold standard:
//   * naive majority voting,
//   * accuracy-weighted voting (no copy detection),
//   * copy-aware fusion (HYBRID detection in the loop).
// The last two are the same Session configuration with copy detection
// toggled off and on.
//
//   ./stock_feeds [--scale=0.1] [--seed=42]
#include <cstdio>

#include "copydetect/session.h"

using namespace copydetect;

int main(int argc, char** argv) {
  double scale = 0.1;
  uint64_t seed = 42;
  FlagSet flags("stock_feeds: Stock-1day world walkthrough");
  flags.Double("scale", &scale, "world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  // Start from the Stock-1day shape, then make the world adversarial:
  // more low-accuracy feeds, bigger copier cliques with near-total
  // selectivity, and a coverage mix where cliques can dominate items.
  WorldConfig config = Stock1DayProfile(scale);
  config.accuracy.frac_low = 0.35;
  config.accuracy.low_lo = 0.05;
  config.accuracy.low_hi = 0.3;
  config.coverage.frac_small = 0.6;
  config.coverage.small_lo = 0.1;
  config.coverage.small_hi = 0.4;
  config.copying.num_groups = 8;
  config.copying.group_min = 4;
  config.copying.group_max = 6;
  config.copying.selectivity = 0.9;
  // This example's story is copier cliques; keep errors uncorrelated
  // so the cliques are the only structure in the noise.
  config.correlated_error_frac = 0.0;
  auto world_or = GenerateWorld(config, seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;
  std::printf("Stock world (scale %.2f): %s\n\n", scale,
              ComputeStats(world.data).ToString().c_str());

  SessionOptions options;
  options.alpha = 0.1;
  options.s = config.copying.selectivity;
  options.n = world.suggested_n;

  // --- Naive voting. ---
  std::vector<SlotId> vote_truth = VoteFusion(world.data);
  double vote_acc = world.gold.Accuracy(world.data, vote_truth);

  // --- Accuracy-only iterative fusion. ---
  SessionOptions no_copy = options;
  no_copy.use_copy_detection = false;
  auto accuracy_only = Session::Create(no_copy);
  CD_CHECK_OK(accuracy_only.status());
  auto acc_report = accuracy_only->Run(world.data);
  CD_CHECK_OK(acc_report.status());
  double acc_acc = world.gold.Accuracy(world.data, acc_report->truth());

  // --- Copy-aware fusion. ---
  options.detector = "hybrid";
  auto aware_session = Session::Create(options);
  CD_CHECK_OK(aware_session.status());
  auto aware = aware_session->Run(world.data);
  CD_CHECK_OK(aware.status());
  double aware_acc = world.gold.Accuracy(world.data, aware->truth());

  TextTable table;
  table.SetHeader({"Strategy", "Gold accuracy", "Detection time"});
  table.AddRow({"majority vote", StrFormat("%.3f", vote_acc), "-"});
  table.AddRow(
      {"accuracy only", StrFormat("%.3f", acc_acc), "-"});
  table.AddRow({"copy-aware (hybrid)", StrFormat("%.3f", aware_acc),
                HumanSeconds(aware->fusion.detect_seconds)});
  std::printf("%s\n", table.Render("Fusion quality:").c_str());

  // How well did detection recover the planted copier cliques?
  // Recall against the direct copier->original edges; precision
  // against the clique closure (co-copiers of one original are
  // indistinguishable from direct copiers — §II footnote 3).
  PrfScores direct =
      ComparePairsToTruth(aware->copies(), world.copy_pairs);
  PrfScores closure = ComparePairsToTruth(
      aware->copies(), CopyClosure(world.copy_pairs));
  std::printf("Copy detection: recall (direct edges) %.2f, "
              "precision (clique closure) %.2f, %zu planted pairs\n",
              direct.recall, closure.precision, world.copy_pairs.size());

  std::printf("Detected copying pairs:\n");
  for (uint64_t key : aware->copies().CopyingPairs()) {
    std::printf("  %s <-> %s\n",
                std::string(world.data.source_name(PairFirst(key)))
                    .c_str(),
                std::string(world.data.source_name(PairSecond(key)))
                    .c_str());
  }
  return 0;
}
