# ctest driver for the CLI snapshot round trip: run + save, then
# warm-start from the file, and require byte-identical truth output.
#   cmake -DCLI=<copydetect_cli> -DWORK_DIR=<dir> -P this_file
set(snap "${WORK_DIR}/cli_roundtrip.cdsnap")
set(cold_truth "${WORK_DIR}/cli_roundtrip_cold.csv")
set(warm_truth "${WORK_DIR}/cli_roundtrip_warm.csv")

execute_process(
  COMMAND ${CLI} --generate=example --detector=hybrid
          --save-snapshot=${snap} --out-truth=${cold_truth}
  RESULT_VARIABLE cold_result)
if(NOT cold_result EQUAL 0)
  message(FATAL_ERROR "cold run + --save-snapshot failed (${cold_result})")
endif()

execute_process(
  COMMAND ${CLI} --load-snapshot=${snap} --out-truth=${warm_truth}
  RESULT_VARIABLE warm_result)
if(NOT warm_result EQUAL 0)
  message(FATAL_ERROR "--load-snapshot failed (${warm_result})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${cold_truth} ${warm_truth}
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR "warm-start truth CSV differs from the cold run's")
endif()

file(REMOVE ${snap} ${cold_truth} ${warm_truth})
