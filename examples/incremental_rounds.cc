// Incremental rounds: watch §V at work.
//
// Runs the iterative fusion loop twice on the same stock-shaped world,
// once with HYBRID (full re-detection every round) and once with
// INCREMENTAL, printing a per-round comparison: seconds, cumulative
// computations, and the incremental pass statistics of Table VIII.
//
//   ./incremental_rounds [--scale=0.1] [--seed=9]
#include <cstdio>

#include "common/stringutil.h"
#include "core/hybrid.h"
#include "core/incremental.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table.h"

using namespace copydetect;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.1);
  uint64_t seed = flags.GetUint64("seed", 9);
  flags.Finish();

  auto world_or = MakeWorldByName("stock-1day", scale, seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;

  FusionOptions options;
  options.params.alpha = 0.1;
  options.params.s = 0.8;
  options.params.n = world.suggested_n;
  options.max_rounds = 8;
  // Iterate well past coarse convergence so the incremental rounds
  // (>= 3) are visible — the paper's data sets ran 5-9 rounds.
  options.epsilon = 1e-7;

  HybridDetector hybrid(options.params);
  IncrementalDetector incremental(options.params);
  IterativeFusion fusion(options);

  auto hybrid_run = fusion.Run(world.data, &hybrid);
  CD_CHECK_OK(hybrid_run.status());
  auto incremental_run = fusion.Run(world.data, &incremental);
  CD_CHECK_OK(incremental_run.status());

  TextTable rounds;
  rounds.SetHeader({"Round", "hybrid time", "incremental time", "ratio",
                    "pass1", "pass2", "pass3", "exact"});
  const auto& stats = incremental.round_stats();
  size_t n = std::min(hybrid_run->trace.size(), stats.size());
  for (size_t i = 0; i < n; ++i) {
    double hybrid_secs = hybrid_run->trace[i].detect_seconds;
    double inc_secs = stats[i].seconds;
    std::string ratio =
        stats[i].from_scratch
            ? "scratch"
            : StrFormat("%.0f%%", 100.0 * inc_secs /
                                      std::max(hybrid_secs, 1e-9));
    rounds.AddRow({StrFormat("%d", stats[i].round),
                   HumanSeconds(hybrid_secs), HumanSeconds(inc_secs),
                   ratio,
                   stats[i].from_scratch
                       ? "-"
                       : StrFormat("%llu",
                                   static_cast<unsigned long long>(
                                       stats[i].pass1)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats[i].pass2)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats[i].pass3)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats[i].exact))});
  }
  std::printf("%s\n",
              rounds.Render("Per-round detection cost:").c_str());

  PrfScores prf = ComparePairs(incremental_run->copies,
                               hybrid_run->copies);
  std::printf(
      "Agreement with HYBRID: precision %.3f recall %.3f F1 %.3f\n"
      "Fusion difference: %.4f; accuracy variance: %.5f\n"
      "Total detect seconds: hybrid %s, incremental %s\n",
      prf.precision, prf.recall, prf.f1,
      FusionDifference(world.data, incremental_run->truth,
                       hybrid_run->truth),
      AccuracyVariance(incremental_run->accuracies,
                       hybrid_run->accuracies),
      HumanSeconds(hybrid_run->detect_seconds).c_str(),
      HumanSeconds(incremental_run->detect_seconds).c_str());
  return 0;
}
