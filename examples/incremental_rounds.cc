// Incremental rounds: watch §V at work, round by round.
//
// Runs the pipeline twice on the same stock-shaped world, once with
// HYBRID (full re-detection every round) and once with INCREMENTAL —
// the latter through the Session streaming API, which surfaces the
// fusion loop one round at a time exactly as an online deployment
// would consume it. Prints a per-round comparison: seconds,
// and the incremental pass statistics of Table VIII.
//
//   ./incremental_rounds [--scale=0.1] [--seed=9]
#include <algorithm>
#include <cstdio>

#include "copydetect/session.h"

using namespace copydetect;

int main(int argc, char** argv) {
  double scale = 0.1;
  uint64_t seed = 9;
  FlagSet flags("incremental_rounds: round-by-round INCREMENTAL demo");
  flags.Double("scale", &scale, "world scale factor");
  flags.Uint64("seed", &seed, "world generator seed");
  flags.ParseOrDie(argc, argv);

  auto world_or = MakeWorldByName("stock-1day", scale, seed);
  CD_CHECK_OK(world_or.status());
  const World& world = *world_or;

  SessionOptions options;
  options.alpha = 0.1;
  options.s = 0.8;
  options.n = world.suggested_n;
  options.max_rounds = 8;
  // Iterate well past coarse convergence so the incremental rounds
  // (>= 3) are visible — the paper's data sets ran 5-9 rounds.
  options.epsilon = 1e-7;

  // Reference: HYBRID, one-shot.
  options.detector = "hybrid";
  auto hybrid = Session::Create(options);
  CD_CHECK_OK(hybrid.status());
  auto hybrid_report = hybrid->Run(world.data);
  CD_CHECK_OK(hybrid_report.status());

  // INCREMENTAL through the streaming API: Step() executes one fusion
  // round; report() exposes the per-round state (including the
  // incremental pass statistics) without reaching into detector
  // internals.
  options.detector = "incremental";
  auto incremental = Session::Create(options);
  CD_CHECK_OK(incremental.status());
  CD_CHECK_OK(incremental->Start(world.data));

  TextTable rounds;
  rounds.SetHeader({"Round", "hybrid time", "incremental time", "ratio",
                    "pass1", "pass2", "pass3", "exact"});
  while (true) {
    auto stepped = incremental->Step();
    CD_CHECK_OK(stepped.status());
    if (!*stepped) break;
    const Report& so_far = incremental->report();
    if (so_far.incremental_rounds.empty()) continue;
    const IncrementalRoundInfo& stats =
        so_far.incremental_rounds.back();
    size_t i = so_far.incremental_rounds.size() - 1;
    if (i >= hybrid_report->fusion.trace.size()) continue;
    double hybrid_secs = hybrid_report->fusion.trace[i].detect_seconds;
    std::string ratio =
        stats.from_scratch
            ? "scratch"
            : StrFormat("%.0f%%", 100.0 * stats.seconds /
                                      std::max(hybrid_secs, 1e-9));
    rounds.AddRow({StrFormat("%d", stats.round),
                   HumanSeconds(hybrid_secs), HumanSeconds(stats.seconds),
                   ratio,
                   stats.from_scratch
                       ? "-"
                       : StrFormat("%llu",
                                   static_cast<unsigned long long>(
                                       stats.pass1)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats.pass2)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats.pass3)),
                   StrFormat("%llu", static_cast<unsigned long long>(
                                         stats.exact))});
  }
  std::printf("%s\n",
              rounds.Render("Per-round detection cost:").c_str());

  const Report& incremental_report = incremental->report();
  PrfScores prf = ComparePairs(incremental_report.copies(),
                               hybrid_report->copies());
  std::printf(
      "Agreement with HYBRID: precision %.3f recall %.3f F1 %.3f\n"
      "Fusion difference: %.4f; accuracy variance: %.5f\n"
      "Total detect seconds: hybrid %s, incremental %s\n",
      prf.precision, prf.recall, prf.f1,
      FusionDifference(world.data, incremental_report.truth(),
                       hybrid_report->truth()),
      AccuracyVariance(incremental_report.accuracies(),
                       hybrid_report->accuracies()),
      HumanSeconds(hybrid_report->fusion.detect_seconds).c_str(),
      HumanSeconds(incremental_report.fusion.detect_seconds).c_str());
  return 0;
}
